#include "workload/workloads.hh"

#include "ir/builder.hh"
#include "util/logging.hh"

namespace xisa {

const WorkloadDesc &
workloadDesc(WorkloadId id)
{
    const std::vector<WorkloadDesc> &table = workloadTable();
    for (const WorkloadDesc &d : table)
        if (d.id == id)
            return d;
    panic("workloadDesc: bad id %d", static_cast<int>(id));
}

const WorkloadDesc *
findWorkload(const std::string &name)
{
    for (const WorkloadDesc &d : workloadTable())
        if (name == d.name)
            return &d;
    return nullptr;
}

const char *
workloadName(WorkloadId id)
{
    return workloadDesc(id).name;
}

namespace {

/** The problem classes, described once (name + working-set scale). */
struct ClassDesc {
    ProblemClass cls;
    const char *name;
    int scale;
};

constexpr ClassDesc kClasses[] = {
    {ProblemClass::A, "A", 1},
    {ProblemClass::B, "B", 4},
    {ProblemClass::C, "C", 16},
};

const ClassDesc *
classDesc(ProblemClass cls)
{
    for (const ClassDesc &d : kClasses)
        if (d.cls == cls)
            return &d;
    return nullptr;
}

} // namespace

const char *
className(ProblemClass cls)
{
    const ClassDesc *d = classDesc(cls);
    return d ? d->name : "?";
}

bool
parseProblemClass(const std::string &s, ProblemClass *out)
{
    for (const ClassDesc &d : kClasses) {
        if (s == d.name ||
            (s.size() == 1 && s[0] == d.name[0] + ('a' - 'A'))) {
            *out = d.cls;
            return true;
        }
    }
    return false;
}

int
classScale(ProblemClass cls)
{
    const ClassDesc *d = classDesc(cls);
    return d ? d->scale : 1;
}

std::vector<WorkloadId>
allWorkloads()
{
    std::vector<WorkloadId> out;
    for (const WorkloadDesc &d : workloadTable())
        out.push_back(d.id);
    return out;
}

std::vector<WorkloadId>
npbWorkloads()
{
    std::vector<WorkloadId> out;
    for (const WorkloadDesc &d : workloadTable())
        if (d.threadCapable)
            out.push_back(d.id);
    return out;
}

bool
supportsThreads(WorkloadId id)
{
    return workloadDesc(id).threadCapable;
}

namespace {

constexpr int64_t kMaxThreads = 16;

/** 64-bit LCG step: x' = x * 6364136223846793005 + 1442695040888963407,
 *  with the mixed upper bits returned. Declared once per module. */
uint32_t
declareLcg(ModuleBuilder &mb)
{
    FuncBuilder &f = mb.defineFunc("lcg_next", Type::I64, {Type::Ptr});
    ValueId x = f.load(Type::I64, f.param(0));
    ValueId next = f.add(f.mul(x, f.constInt(6364136223846793005ll)),
                         f.constInt(1442695040888963407ll));
    f.store(Type::I64, f.param(0), next);
    f.ret(f.lshr(next, f.constInt(17)));
    return mb.findFunc("lcg_next");
}

/** Emit the fork/join scaffold: spawn T workers (or call directly when
 *  T == 1) and join them. Worker signature: void worker(i64 tid). */
void
emitRunWorkers(ModuleBuilder &mb, FuncBuilder &f, uint32_t workerId,
               int64_t T)
{
    if (T == 1) {
        f.callVoid(workerId, {f.constInt(0)});
        return;
    }
    uint32_t tidSlot =
        f.declareAlloca(static_cast<uint32_t>(8 * kMaxThreads), 8,
                        "tids");
    ValueId tids = f.allocaAddr(tidSlot);
    ValueId fn = f.funcAddr(workerId);
    f.forLoopI(0, T, [&](ValueId i) {
        ValueId tid = f.call(mb.builtin(Builtin::ThreadSpawn), {fn, i});
        f.storeIdx(Type::I64, tids, i, tid, 8);
    });
    f.forLoopI(0, T, [&](ValueId i) {
        f.callVoid(mb.builtin(Builtin::ThreadJoin),
                   {f.loadIdx(Type::I64, tids, i, 8)});
    });
}

/** Emit a barrier among the T workers. */
void
emitBarrier(ModuleBuilder &mb, FuncBuilder &w, int64_t id, int64_t T)
{
    w.callVoid(mb.builtin(Builtin::BarrierWait),
               {w.constInt(id), w.constInt(T)});
}

/** Emit branch-free chunk bounds [lo, hi) of n items for thread t. */
std::pair<ValueId, ValueId>
emitChunk(FuncBuilder &w, ValueId t, int64_t n, int64_t T)
{
    int64_t chunk = n / T;
    ValueId lo = w.mulImm(t, chunk);
    ValueId isLast = w.icmp(Cond::EQ, t, w.constInt(T - 1));
    ValueId hi = w.add(w.addImm(lo, chunk),
                       w.mulImm(isLast, n - T * chunk));
    return {lo, hi};
}

// --- CG: sparse power iteration ----------------------------------------

Module
buildCg(ProblemClass cls, int64_t T)
{
    const int64_t n = 512 * classScale(cls);
    const int64_t k = 8;
    const int64_t iters = 8;
    ModuleBuilder mb("cg");
    uint32_t gVals = mb.addGlobal("vals", static_cast<uint64_t>(n * k * 8));
    uint32_t gCols = mb.addGlobal("cols", static_cast<uint64_t>(n * k * 8));
    uint32_t gP = mb.addGlobal("pvec", static_cast<uint64_t>(n * 8));
    uint32_t gQ = mb.addGlobal("qvec", static_cast<uint64_t>(n * 8));
    uint32_t gPart = mb.addGlobal("partial", kMaxThreads * 8);
    uint32_t gNorm = mb.addGlobal("normg", 8);

    FuncBuilder &init = mb.defineFunc("cg_init", Type::Void, {});
    {
        ValueId p = init.globalAddr(gP);
        init.forLoopI(0, n, [&](ValueId i) {
            init.storeIdx(Type::F64, p, i, init.constFloat(1.0), 8);
        });
        ValueId cols = init.globalAddr(gCols);
        ValueId vals = init.globalAddr(gVals);
        init.forLoopI(0, n * k, [&](ValueId e) {
            ValueId col = init.urem(init.mulImm(e, 2654435761ll),
                                    init.constInt(n));
            init.storeIdx(Type::I64, cols, e, col, 8);
            ValueId m = init.urem(e, init.constInt(13));
            ValueId v = init.fmul(init.sitofp(init.addImm(m, 1)),
                                  init.constFloat(0.25 / k));
            init.storeIdx(Type::F64, vals, e, v, 8);
        });
        init.ret();
    }

    FuncBuilder &w = mb.defineFunc("cg_worker", Type::Void, {Type::I64});
    {
        ValueId t = w.param(0);
        auto [lo, hi] = emitChunk(w, t, n, T);
        ValueId vals = w.globalAddr(gVals);
        ValueId cols = w.globalAddr(gCols);
        ValueId p = w.globalAddr(gP);
        ValueId q = w.globalAddr(gQ);
        ValueId part = w.globalAddr(gPart);
        ValueId normA = w.globalAddr(gNorm);
        uint32_t sSlot = w.declareAlloca(8, 8, "s");
        ValueId s = w.allocaAddr(sSlot);
        w.forLoopI(0, iters, [&](ValueId) {
            // q = A * p over our rows.
            w.forLoop(lo, hi, [&](ValueId i) {
                w.store(Type::F64, s, w.constFloat(0.0));
                ValueId base = w.mulImm(i, k);
                w.forLoopI(0, k, [&](ValueId j) {
                    ValueId e = w.add(base, j);
                    ValueId c = w.loadIdx(Type::I64, cols, e, 8);
                    ValueId av = w.loadIdx(Type::F64, vals, e, 8);
                    ValueId pv = w.loadIdx(Type::F64, p, c, 8);
                    w.store(Type::F64, s,
                            w.fadd(w.load(Type::F64, s),
                                   w.fmul(av, pv)));
                });
                w.storeIdx(Type::F64, q, i, w.load(Type::F64, s), 8);
            });
            emitBarrier(mb, w, 20, T);
            // partial[t] = sum q_i^2 over our rows.
            w.store(Type::F64, s, w.constFloat(0.0));
            w.forLoop(lo, hi, [&](ValueId i) {
                ValueId qv = w.loadIdx(Type::F64, q, i, 8);
                w.store(Type::F64, s,
                        w.fadd(w.load(Type::F64, s), w.fmul(qv, qv)));
            });
            w.storeIdx(Type::F64, part, t, w.load(Type::F64, s), 8);
            emitBarrier(mb, w, 21, T);
            // Thread 0 combines the norm deterministically.
            ValueId isZero = w.icmp(Cond::EQ, t, w.constInt(0));
            w.ifThen(isZero, [&] {
                w.store(Type::F64, s, w.constFloat(1.0));
                w.forLoopI(0, T, [&](ValueId tt) {
                    w.store(Type::F64, s,
                            w.fadd(w.load(Type::F64, s),
                                   w.loadIdx(Type::F64, part, tt, 8)));
                });
                w.store(Type::F64, normA, w.load(Type::F64, s));
            });
            emitBarrier(mb, w, 22, T);
            // p = q / norm over our rows.
            ValueId nv = w.load(Type::F64, normA);
            w.forLoop(lo, hi, [&](ValueId i) {
                w.storeIdx(Type::F64, p, i,
                           w.fdiv(w.loadIdx(Type::F64, q, i, 8), nv), 8);
            });
            emitBarrier(mb, w, 23, T);
        });
        w.ret();
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.findFunc("cg_init"), {});
    emitRunWorkers(mb, f, mb.findFunc("cg_worker"), T);
    uint32_t cSlot = f.declareAlloca(8, 8, "chk");
    ValueId chk = f.allocaAddr(cSlot);
    f.store(Type::F64, chk, f.constFloat(0.0));
    ValueId p = f.globalAddr(gP);
    f.forLoopI(0, n, [&](ValueId i) {
        ValueId wgt = f.sitofp(f.addImm(f.srem(i, f.constInt(7)), 1));
        f.store(Type::F64, chk,
                f.fadd(f.load(Type::F64, chk),
                       f.fmul(f.loadIdx(Type::F64, p, i, 8), wgt)));
    });
    f.callVoid(mb.builtin(Builtin::PrintF64), {f.load(Type::F64, chk)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// --- IS: bucket sort -----------------------------------------------------

Module
buildIs(ProblemClass cls, int64_t T)
{
    const int64_t n = 16384 * classScale(cls);
    const int64_t buckets = 512;
    const int64_t shift = 7; // keys in [0, 65536); 65536/512 = 128 = 2^7
    ModuleBuilder mb("is");
    uint32_t lcg = declareLcg(mb);
    uint32_t gKeys = mb.addGlobal("keys", static_cast<uint64_t>(n * 8));
    uint32_t gOut = mb.addGlobal("outp", static_cast<uint64_t>(n * 8));
    uint32_t gHist = mb.addGlobal(
        "phist", static_cast<uint64_t>(kMaxThreads * buckets * 8));
    uint32_t gTot = mb.addGlobal("total",
                                 static_cast<uint64_t>(buckets * 8));
    uint32_t gOffs = mb.addGlobal(
        "offs", static_cast<uint64_t>((kMaxThreads + 1) * buckets * 8));
    uint32_t gPart = mb.addGlobal("partial", kMaxThreads * 8);

    FuncBuilder &init = mb.defineFunc("is_init", Type::Void, {});
    {
        uint32_t st = init.declareAlloca(8, 8, "rng");
        ValueId rng = init.allocaAddr(st);
        init.store(Type::I64, rng, init.constInt(271828182845ll));
        ValueId keys = init.globalAddr(gKeys);
        init.forLoopI(0, n, [&](ValueId i) {
            ValueId r = init.call(lcg, {rng});
            init.storeIdx(Type::I64, keys, i,
                          init.band(r, init.constInt(65535)), 8);
        });
        init.ret();
    }

    FuncBuilder &w = mb.defineFunc("is_worker", Type::Void, {Type::I64});
    {
        ValueId t = w.param(0);
        auto [lo, hi] = emitChunk(w, t, n, T);
        ValueId keys = w.globalAddr(gKeys);
        ValueId outp = w.globalAddr(gOut);
        ValueId phist = w.globalAddr(gHist);
        ValueId total = w.globalAddr(gTot);
        ValueId offs = w.globalAddr(gOffs);
        ValueId myhist = w.add(phist, w.mulImm(t, buckets * 8));
        // Phase 1: per-thread histogram.
        w.forLoopI(0, buckets, [&](ValueId b) {
            w.storeIdx(Type::I64, myhist, b, w.constInt(0), 8);
        });
        w.forLoop(lo, hi, [&](ValueId i) {
            ValueId key = w.loadIdx(Type::I64, keys, i, 8);
            ValueId b = w.lshr(key, w.constInt(shift));
            ValueId old = w.loadIdx(Type::I64, myhist, b, 8);
            w.storeIdx(Type::I64, myhist, b, w.addImm(old, 1), 8);
        });
        emitBarrier(mb, w, 30, T);
        // Phase 2: bucket-parallel reduction.
        auto [blo, bhi] = emitChunk(w, t, buckets, T);
        w.forLoop(blo, bhi, [&](ValueId b) {
            uint32_t accSlot = 0;
            (void)accSlot;
            ValueId zero = w.constInt(0);
            // Running sum across threads (loop-carried via alloca).
            // Use total[b] as the accumulator.
            w.storeIdx(Type::I64, total, b, zero, 8);
            w.forLoopI(0, T, [&](ValueId tt) {
                ValueId e = w.add(w.mulImm(tt, buckets), b);
                ValueId v = w.loadIdx(Type::I64, phist, e, 8);
                ValueId cur = w.loadIdx(Type::I64, total, b, 8);
                w.storeIdx(Type::I64, total, b, w.add(cur, v), 8);
            });
        });
        emitBarrier(mb, w, 31, T);
        // Phase 3: thread 0 computes global bucket offsets.
        ValueId isZero = w.icmp(Cond::EQ, t, w.constInt(0));
        uint32_t runSlot = w.declareAlloca(8, 8, "run");
        ValueId run = w.allocaAddr(runSlot);
        w.ifThen(isZero, [&] {
            w.store(Type::I64, run, w.constInt(0));
            w.forLoopI(0, buckets, [&](ValueId b) {
                // offs[T*buckets + b] holds the bucket base.
                ValueId e = w.addImm(b, T * buckets);
                w.storeIdx(Type::I64, offs, e,
                           w.load(Type::I64, run), 8);
                w.store(Type::I64, run,
                        w.add(w.load(Type::I64, run),
                              w.loadIdx(Type::I64, total, b, 8)));
            });
        });
        emitBarrier(mb, w, 32, T);
        // Phase 4: per-(thread, bucket) scatter cursors.
        w.forLoop(blo, bhi, [&](ValueId b) {
            w.store(Type::I64, run,
                    w.loadIdx(Type::I64, offs,
                              w.addImm(b, T * buckets), 8));
            w.forLoopI(0, T, [&](ValueId tt) {
                ValueId e = w.add(w.mulImm(tt, buckets), b);
                w.storeIdx(Type::I64, offs, e,
                           w.load(Type::I64, run), 8);
                w.store(Type::I64, run,
                        w.add(w.load(Type::I64, run),
                              w.loadIdx(Type::I64, phist, e, 8)));
            });
        });
        emitBarrier(mb, w, 33, T);
        // Phase 5: stable scatter using our cursors.
        ValueId myoffs = w.add(offs, w.mulImm(t, buckets * 8));
        w.forLoop(lo, hi, [&](ValueId i) {
            ValueId key = w.loadIdx(Type::I64, keys, i, 8);
            ValueId b = w.lshr(key, w.constInt(shift));
            ValueId pos = w.loadIdx(Type::I64, myoffs, b, 8);
            w.storeIdx(Type::I64, myoffs, b, w.addImm(pos, 1), 8);
            w.storeIdx(Type::I64, outp, pos, key, 8);
        });
        emitBarrier(mb, w, 34, T);
        // Phase 6: partial rank checksum.
        uint32_t aSlot = w.declareAlloca(8, 8, "acc");
        ValueId acc = w.allocaAddr(aSlot);
        w.store(Type::I64, acc, w.constInt(0));
        w.forLoop(lo, hi, [&](ValueId i) {
            ValueId v = w.loadIdx(Type::I64, outp, i, 8);
            ValueId wgt = w.addImm(w.band(i, w.constInt(15)), 1);
            w.store(Type::I64, acc,
                    w.add(w.load(Type::I64, acc), w.mul(v, wgt)));
        });
        w.storeIdx(Type::I64, w.globalAddr(gPart), t,
                   w.load(Type::I64, acc), 8);
        w.ret();
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.findFunc("is_init"), {});
    emitRunWorkers(mb, f, mb.findFunc("is_worker"), T);
    // Verify sortedness (bucket order) and print the checksum.
    uint32_t sSlot = f.declareAlloca(16, 8, "state");
    ValueId st = f.allocaAddr(sSlot);
    f.store(Type::I64, st, f.constInt(0));      // violations
    f.store(Type::I64, st, f.constInt(0), 8);   // checksum
    ValueId outp = f.globalAddr(gOut);
    f.forLoopI(0, n - 1, [&](ValueId i) {
        ValueId a = f.lshr(f.loadIdx(Type::I64, outp, i, 8),
                           f.constInt(shift));
        ValueId b = f.lshr(f.loadIdx(Type::I64, outp, f.addImm(i, 1), 8),
                           f.constInt(shift));
        ValueId bad = f.icmp(Cond::GT, a, b);
        f.store(Type::I64, st,
                f.add(f.load(Type::I64, st), bad));
    });
    ValueId part = f.globalAddr(gPart);
    f.forLoopI(0, T, [&](ValueId tt) {
        f.store(Type::I64, st,
                f.add(f.load(Type::I64, st, 8),
                      f.loadIdx(Type::I64, part, tt, 8)),
                8);
    });
    f.callVoid(mb.builtin(Builtin::PrintI64), {f.load(Type::I64, st)});
    f.callVoid(mb.builtin(Builtin::PrintI64), {f.load(Type::I64, st, 8)});
    f.ret(f.load(Type::I64, st)); // violation count: 0 on success
    return mb.finish();
}

// --- FT: strided butterfly sweeps ---------------------------------------

Module
buildFt(ProblemClass cls, int64_t T)
{
    const int64_t n = 16384 * classScale(cls);
    const int64_t sweeps = 4;
    ModuleBuilder mb("ft");
    uint32_t gX = mb.addGlobal("xv", static_cast<uint64_t>(n * 8));
    uint32_t gY = mb.addGlobal("yv", static_cast<uint64_t>(n * 8));

    FuncBuilder &init = mb.defineFunc("ft_init", Type::Void, {});
    {
        ValueId x = init.globalAddr(gX);
        init.forLoopI(0, n, [&](ValueId i) {
            ValueId v = init.fmul(
                init.sitofp(init.sub(init.band(i, init.constInt(127)),
                                     init.constInt(64))),
                init.constFloat(1.0 / 64.0));
            init.storeIdx(Type::F64, x, i, v, 8);
        });
        init.ret();
    }

    FuncBuilder &w = mb.defineFunc("ft_worker", Type::Void, {Type::I64});
    {
        ValueId t = w.param(0);
        auto [lo, hi] = emitChunk(w, t, n, T);
        ValueId x = w.globalAddr(gX);
        ValueId y = w.globalAddr(gY);
        int64_t strides[4] = {1, 16, 256, 4096};
        for (int s = 0; s < sweeps; ++s) {
            ValueId src = s % 2 == 0 ? x : y;
            ValueId dst = s % 2 == 0 ? y : x;
            int64_t stride = strides[s];
            w.forLoop(lo, hi, [&](ValueId i) {
                ValueId j = w.addImm(i, stride);
                ValueId over = w.icmp(Cond::GE, j, w.constInt(n));
                j = w.sub(j, w.mulImm(over, n));
                ValueId wt = w.fmul(
                    w.sitofp(w.sub(w.band(i, w.constInt(63)),
                                   w.constInt(32))),
                    w.constFloat(1.0 / 64.0));
                ValueId v =
                    w.fadd(w.fmul(w.loadIdx(Type::F64, src, i, 8),
                                  w.constFloat(0.75)),
                           w.fmul(w.loadIdx(Type::F64, src, j, 8), wt));
                w.storeIdx(Type::F64, dst, i, v, 8);
            });
            emitBarrier(mb, w, 40 + s, T);
        }
        w.ret();
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.findFunc("ft_init"), {});
    emitRunWorkers(mb, f, mb.findFunc("ft_worker"), T);
    uint32_t cSlot = f.declareAlloca(8, 8, "chk");
    ValueId chk = f.allocaAddr(cSlot);
    f.store(Type::F64, chk, f.constFloat(0.0));
    ValueId x = f.globalAddr(gX);
    f.forLoopI(0, n, [&](ValueId i) {
        f.store(Type::F64, chk,
                f.fadd(f.load(Type::F64, chk),
                       f.fmul(f.loadIdx(Type::F64, x, i, 8),
                              f.sitofp(f.addImm(
                                  f.band(i, f.constInt(7)), 1)))));
    });
    f.callVoid(mb.builtin(Builtin::PrintF64), {f.load(Type::F64, chk)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// --- EP: embarrassingly parallel tallying --------------------------------

Module
buildEp(ProblemClass cls, int64_t T)
{
    const int64_t pairs = 16384 * classScale(cls);
    ModuleBuilder mb("ep");
    uint32_t lcg = declareLcg(mb);
    uint32_t gCnt = mb.addGlobal("counts",
                                 static_cast<uint64_t>(kMaxThreads * 4 * 8));
    uint32_t gSx = mb.addGlobal("sx", kMaxThreads * 8);
    uint32_t gSy = mb.addGlobal("sy", kMaxThreads * 8);

    FuncBuilder &w = mb.defineFunc("ep_worker", Type::Void, {Type::I64});
    {
        ValueId t = w.param(0);
        auto [lo, hi] = emitChunk(w, t, pairs, T);
        (void)lo;
        ValueId myCnt = w.add(w.globalAddr(gCnt), w.mulImm(t, 32));
        uint32_t rngSlot = w.declareAlloca(8, 8, "rng");
        uint32_t accSlot = w.declareAlloca(16, 8, "acc");
        ValueId rng = w.allocaAddr(rngSlot);
        ValueId acc = w.allocaAddr(accSlot);
        w.store(Type::F64, acc, w.constFloat(0.0));      // sum x
        w.store(Type::F64, acc, w.constFloat(0.0), 8);   // sum y
        w.forLoopI(0, 4, [&](ValueId q) {
            w.storeIdx(Type::I64, myCnt, q, w.constInt(0), 8);
        });
        w.forLoop(lo, hi, [&](ValueId i) {
            // Per-pair seed: the sampled stream is a function of the
            // pair index, so results are independent of the thread
            // partition (NPB EP's independent-streams property).
            w.store(Type::I64, rng,
                    w.add(w.mulImm(i, 987654321ll), w.constInt(42)));
            auto unit = [&]() {
                ValueId r = w.call(lcg, {rng});
                ValueId u = w.fmul(
                    w.sitofp(w.band(r, w.constInt((1 << 20) - 1))),
                    w.constFloat(1.0 / (1 << 19)));
                return w.fsub(u, w.constFloat(1.0)); // [-1, 1)
            };
            ValueId xv = unit();
            ValueId yv = unit();
            ValueId tt = w.fadd(w.fmul(xv, xv), w.fmul(yv, yv));
            ValueId inside = w.fcmp(Cond::LE, tt, w.constFloat(1.0));
            w.ifThen(inside, [&] {
                ValueId q = w.fptosi(w.fmul(tt, w.constFloat(3.999)));
                ValueId old = w.loadIdx(Type::I64, myCnt, q, 8);
                w.storeIdx(Type::I64, myCnt, q, w.addImm(old, 1), 8);
                w.store(Type::F64, acc,
                        w.fadd(w.load(Type::F64, acc), xv));
                w.store(Type::F64, acc,
                        w.fadd(w.load(Type::F64, acc, 8), yv), 8);
            });
        });
        w.storeIdx(Type::F64, w.globalAddr(gSx), t,
                   w.load(Type::F64, acc), 8);
        w.storeIdx(Type::F64, w.globalAddr(gSy), t,
                   w.load(Type::F64, acc, 8), 8);
        w.ret();
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    emitRunWorkers(mb, f, mb.findFunc("ep_worker"), T);
    uint32_t sSlot = f.declareAlloca(24, 8, "sum");
    ValueId s = f.allocaAddr(sSlot);
    f.store(Type::I64, s, f.constInt(0));
    f.store(Type::F64, s, f.constFloat(0.0), 8);
    f.store(Type::F64, s, f.constFloat(0.0), 16);
    ValueId cnt = f.globalAddr(gCnt);
    f.forLoopI(0, T * 4, [&](ValueId e) {
        f.store(Type::I64, s,
                f.add(f.load(Type::I64, s),
                      f.loadIdx(Type::I64, cnt, e, 8)));
    });
    ValueId sx = f.globalAddr(gSx);
    ValueId sy = f.globalAddr(gSy);
    f.forLoopI(0, T, [&](ValueId tt) {
        f.store(Type::F64, s,
                f.fadd(f.load(Type::F64, s, 8),
                       f.loadIdx(Type::F64, sx, tt, 8)),
                8);
        f.store(Type::F64, s,
                f.fadd(f.load(Type::F64, s, 16),
                       f.loadIdx(Type::F64, sy, tt, 8)),
                16);
    });
    f.callVoid(mb.builtin(Builtin::PrintI64), {f.load(Type::I64, s)});
    f.callVoid(mb.builtin(Builtin::PrintF64), {f.load(Type::F64, s, 8)});
    f.callVoid(mb.builtin(Builtin::PrintF64), {f.load(Type::F64, s, 16)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// --- MG: 1-D multigrid V-cycles -------------------------------------------

Module
buildMg(ProblemClass cls, int64_t T)
{
    const int64_t n = 8192 * classScale(cls);
    const int64_t levels = 4;
    const int64_t cycles = 2;
    ModuleBuilder mb("mg");
    // One array per level: u (solution) and r (rhs/residual).
    std::vector<uint32_t> gU, gR;
    int64_t sz = n;
    for (int64_t l = 0; l < levels; ++l) {
        gU.push_back(mb.addGlobal(strfmt("u%lld", (long long)l),
                                  static_cast<uint64_t>(sz * 8)));
        gR.push_back(mb.addGlobal(strfmt("r%lld", (long long)l),
                                  static_cast<uint64_t>(sz * 8)));
        sz /= 2;
    }

    FuncBuilder &init = mb.defineFunc("mg_init", Type::Void, {});
    {
        ValueId r0 = init.globalAddr(gR[0]);
        init.forLoopI(0, n, [&](ValueId i) {
            ValueId v = init.fmul(
                init.sitofp(init.sub(init.band(i, init.constInt(255)),
                                     init.constInt(128))),
                init.constFloat(1.0 / 128.0));
            init.storeIdx(Type::F64, r0, i, v, 8);
        });
        init.ret();
    }

    FuncBuilder &w = mb.defineFunc("mg_worker", Type::Void, {Type::I64});
    {
        ValueId t = w.param(0);
        int barrier = 50;
        // Red-black Gauss-Seidel: each colour only reads the other
        // colour, so parallel execution is deterministic regardless of
        // thread interleaving (and hence of migration schedules).
        auto smooth = [&](uint32_t u, uint32_t r, int64_t len) {
            auto [lo, hi] = emitChunk(w, t, len - 2, T);
            ValueId ua = w.globalAddr(u);
            ValueId ra = w.globalAddr(r);
            for (int64_t colour = 0; colour < 2; ++colour) {
                w.forLoop(w.addImm(lo, 1), w.addImm(hi, 1),
                          [&](ValueId i) {
                    ValueId mine = w.icmp(
                        Cond::EQ, w.band(i, w.constInt(1)),
                        w.constInt(colour));
                    w.ifThen(mine, [&] {
                        ValueId left = w.loadIdx(Type::F64, ua,
                                                 w.addImm(i, -1), 8);
                        ValueId right = w.loadIdx(Type::F64, ua,
                                                  w.addImm(i, 1), 8);
                        ValueId rv = w.loadIdx(Type::F64, ra, i, 8);
                        ValueId v = w.fmul(
                            w.fadd(w.fadd(left, right), rv),
                            w.constFloat(0.5));
                        w.storeIdx(Type::F64, ua, i, v, 8);
                    });
                });
                emitBarrier(mb, w, barrier++, T);
            }
        };
        auto restrictTo = [&](uint32_t rf, uint32_t rc, int64_t coarse) {
            auto [lo, hi] = emitChunk(w, t, coarse, T);
            ValueId fa = w.globalAddr(rf);
            ValueId ca = w.globalAddr(rc);
            w.forLoop(lo, hi, [&](ValueId i) {
                ValueId j = w.mulImm(i, 2);
                ValueId v = w.fmul(
                    w.fadd(w.loadIdx(Type::F64, fa, j, 8),
                           w.loadIdx(Type::F64, fa, w.addImm(j, 1), 8)),
                    w.constFloat(0.5));
                w.storeIdx(Type::F64, ca, i, v, 8);
            });
            emitBarrier(mb, w, barrier++, T);
        };
        auto prolong = [&](uint32_t uc, uint32_t uf, int64_t coarse) {
            auto [lo, hi] = emitChunk(w, t, coarse, T);
            ValueId ca = w.globalAddr(uc);
            ValueId fa = w.globalAddr(uf);
            w.forLoop(lo, hi, [&](ValueId i) {
                ValueId v = w.loadIdx(Type::F64, ca, i, 8);
                ValueId j = w.mulImm(i, 2);
                ValueId f0 = w.loadIdx(Type::F64, fa, j, 8);
                w.storeIdx(Type::F64, fa, j,
                           w.fadd(f0, v), 8);
                ValueId f1 =
                    w.loadIdx(Type::F64, fa, w.addImm(j, 1), 8);
                w.storeIdx(Type::F64, fa, w.addImm(j, 1),
                           w.fadd(f1, v), 8);
            });
            emitBarrier(mb, w, barrier++, T);
        };
        for (int64_t c = 0; c < cycles; ++c) {
            int64_t len = n;
            for (int64_t l = 0; l < levels - 1; ++l) {
                smooth(gU[static_cast<size_t>(l)],
                       gR[static_cast<size_t>(l)], len);
                restrictTo(gR[static_cast<size_t>(l)],
                           gR[static_cast<size_t>(l + 1)], len / 2);
                len /= 2;
            }
            smooth(gU[levels - 1], gR[levels - 1], len);
            for (int64_t l = levels - 1; l > 0; --l) {
                prolong(gU[static_cast<size_t>(l)],
                        gU[static_cast<size_t>(l - 1)], len);
                len *= 2;
                smooth(gU[static_cast<size_t>(l - 1)],
                       gR[static_cast<size_t>(l - 1)], len);
            }
        }
        w.ret();
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.findFunc("mg_init"), {});
    emitRunWorkers(mb, f, mb.findFunc("mg_worker"), T);
    uint32_t cSlot = f.declareAlloca(8, 8, "chk");
    ValueId chk = f.allocaAddr(cSlot);
    f.store(Type::F64, chk, f.constFloat(0.0));
    ValueId u0 = f.globalAddr(gU[0]);
    f.forLoopI(0, n, [&](ValueId i) {
        f.store(Type::F64, chk,
                f.fadd(f.load(Type::F64, chk),
                       f.loadIdx(Type::F64, u0, i, 8)));
    });
    f.callVoid(mb.builtin(Builtin::PrintF64), {f.load(Type::F64, chk)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// --- SP: Jacobi relaxation -------------------------------------------------

Module
buildSp(ProblemClass cls, int64_t T)
{
    int64_t g = 48;
    for (int i = 1; i < classScale(cls); i *= 4)
        g *= 2;
    const int64_t iters = 8;
    ModuleBuilder mb("sp");
    uint32_t gA = mb.addGlobal("grid_a", static_cast<uint64_t>(g * g * 8));
    uint32_t gB = mb.addGlobal("grid_b", static_cast<uint64_t>(g * g * 8));

    FuncBuilder &init = mb.defineFunc("sp_init", Type::Void, {});
    {
        ValueId a = init.globalAddr(gA);
        init.forLoopI(0, g * g, [&](ValueId e) {
            ValueId v = init.fmul(
                init.sitofp(init.band(e, init.constInt(31))),
                init.constFloat(1.0 / 16.0));
            init.storeIdx(Type::F64, a, e, v, 8);
        });
        init.callVoid(mb.builtin(Builtin::Memcpy),
                      {init.globalAddr(gB), a, init.constInt(g * g * 8)});
        init.ret();
    }

    FuncBuilder &w = mb.defineFunc("sp_worker", Type::Void, {Type::I64});
    {
        ValueId t = w.param(0);
        auto [lo, hi] = emitChunk(w, t, g - 2, T);
        ValueId rowLo = w.addImm(lo, 1);
        ValueId rowHi = w.addImm(hi, 1);
        ValueId a = w.globalAddr(gA);
        ValueId b = w.globalAddr(gB);
        for (int64_t it = 0; it < iters; ++it) {
            ValueId src = it % 2 == 0 ? a : b;
            ValueId dst = it % 2 == 0 ? b : a;
            w.forLoop(rowLo, rowHi, [&](ValueId i) {
                ValueId base = w.mulImm(i, g);
                w.forLoopI(1, g - 1, [&](ValueId j) {
                    ValueId e = w.add(base, j);
                    ValueId up = w.loadIdx(Type::F64, src,
                                           w.addImm(e, -g), 8);
                    ValueId dn = w.loadIdx(Type::F64, src,
                                           w.addImm(e, g), 8);
                    ValueId lf = w.loadIdx(Type::F64, src,
                                           w.addImm(e, -1), 8);
                    ValueId rt = w.loadIdx(Type::F64, src,
                                           w.addImm(e, 1), 8);
                    ValueId v = w.fmul(
                        w.fadd(w.fadd(up, dn), w.fadd(lf, rt)),
                        w.constFloat(0.25));
                    w.storeIdx(Type::F64, dst, e, v, 8);
                });
            });
            emitBarrier(mb, w, 70 + static_cast<int>(it), T);
        }
        w.ret();
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.findFunc("sp_init"), {});
    emitRunWorkers(mb, f, mb.findFunc("sp_worker"), T);
    uint32_t cSlot = f.declareAlloca(8, 8, "chk");
    ValueId chk = f.allocaAddr(cSlot);
    f.store(Type::F64, chk, f.constFloat(0.0));
    ValueId a = f.globalAddr(gA);
    f.forLoopI(0, g * g, [&](ValueId e) {
        f.store(Type::F64, chk,
                f.fadd(f.load(Type::F64, chk),
                       f.loadIdx(Type::F64, a, e, 8)));
    });
    f.callVoid(mb.builtin(Builtin::PrintF64), {f.load(Type::F64, chk)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// --- BT: per-line Thomas solves ---------------------------------------------

Module
buildBt(ProblemClass cls, int64_t T)
{
    const int64_t rows = 64 * classScale(cls);
    const int64_t cols = 64;
    const int64_t iters = 4;
    ModuleBuilder mb("bt");
    uint32_t gRhs = mb.addGlobal("rhs",
                                 static_cast<uint64_t>(rows * cols * 8));
    uint32_t gCw = mb.addGlobal(
        "cw", static_cast<uint64_t>(kMaxThreads * cols * 8));
    uint32_t gDw = mb.addGlobal(
        "dw", static_cast<uint64_t>(kMaxThreads * cols * 8));

    FuncBuilder &init = mb.defineFunc("bt_init", Type::Void, {});
    {
        ValueId rhs = init.globalAddr(gRhs);
        init.forLoopI(0, rows * cols, [&](ValueId e) {
            ValueId v = init.fmul(
                init.sitofp(init.addImm(
                    init.band(e, init.constInt(63)), 1)),
                init.constFloat(1.0 / 32.0));
            init.storeIdx(Type::F64, rhs, e, v, 8);
        });
        init.ret();
    }

    FuncBuilder &w = mb.defineFunc("bt_worker", Type::Void, {Type::I64});
    {
        ValueId t = w.param(0);
        auto [lo, hi] = emitChunk(w, t, rows, T);
        ValueId rhs = w.globalAddr(gRhs);
        ValueId cw = w.add(w.globalAddr(gCw), w.mulImm(t, cols * 8));
        ValueId dw = w.add(w.globalAddr(gDw), w.mulImm(t, cols * 8));
        // Tridiagonal system per row: a=-1, b=2.5, c=-1.
        for (int64_t it = 0; it < iters; ++it) {
            w.forLoop(lo, hi, [&](ValueId row) {
                ValueId base = w.mulImm(row, cols);
                // Forward sweep.
                ValueId d0 = w.loadIdx(Type::F64, rhs, base, 8);
                ValueId beta = w.constFloat(2.5);
                w.storeIdx(Type::F64, cw, w.constInt(0),
                           w.fdiv(w.constFloat(-1.0), beta), 8);
                w.storeIdx(Type::F64, dw, w.constInt(0),
                           w.fdiv(d0, beta), 8);
                w.forLoopI(1, cols, [&](ValueId j) {
                    ValueId cPrev = w.loadIdx(Type::F64, cw,
                                              w.addImm(j, -1), 8);
                    ValueId dPrev = w.loadIdx(Type::F64, dw,
                                              w.addImm(j, -1), 8);
                    ValueId denom = w.fadd(w.constFloat(2.5), cPrev);
                    ValueId dj = w.loadIdx(Type::F64, rhs,
                                           w.add(base, j), 8);
                    w.storeIdx(Type::F64, cw, j,
                               w.fdiv(w.constFloat(-1.0), denom), 8);
                    w.storeIdx(Type::F64, dw, j,
                               w.fdiv(w.fadd(dj, dPrev), denom), 8);
                });
                // Back substitution into rhs (becomes next iter input).
                ValueId last = w.constInt(cols - 1);
                w.storeIdx(Type::F64, rhs, w.add(base, last),
                           w.loadIdx(Type::F64, dw, last, 8), 8);
                w.forLoopI(1, cols, [&](ValueId jj) {
                    ValueId j = w.sub(w.constInt(cols - 1), jj);
                    ValueId xNext = w.loadIdx(
                        Type::F64, rhs,
                        w.add(base, w.addImm(j, 1)), 8);
                    ValueId v = w.fsub(
                        w.loadIdx(Type::F64, dw, j, 8),
                        w.fmul(w.loadIdx(Type::F64, cw, j, 8),
                               w.fneg(xNext)));
                    w.storeIdx(Type::F64, rhs, w.add(base, j), v, 8);
                });
            });
            emitBarrier(mb, w, 80 + static_cast<int>(it), T);
        }
        w.ret();
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.findFunc("bt_init"), {});
    emitRunWorkers(mb, f, mb.findFunc("bt_worker"), T);
    uint32_t cSlot = f.declareAlloca(8, 8, "chk");
    ValueId chk = f.allocaAddr(cSlot);
    f.store(Type::F64, chk, f.constFloat(0.0));
    ValueId rhs = f.globalAddr(gRhs);
    f.forLoopI(0, rows * cols, [&](ValueId e) {
        f.store(Type::F64, chk,
                f.fadd(f.load(Type::F64, chk),
                       f.loadIdx(Type::F64, rhs, e, 8)));
    });
    f.callVoid(mb.builtin(Builtin::PrintF64), {f.load(Type::F64, chk)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// --- BZIP: RLE + move-to-front (serial, branchy) ---------------------------

Module
buildBzip(ProblemClass cls)
{
    const int64_t block = 32768 * classScale(cls);
    ModuleBuilder mb("bzip");
    uint32_t lcg = declareLcg(mb);
    uint32_t gBuf = mb.addGlobal("buf", static_cast<uint64_t>(block));
    uint32_t gRle = mb.addGlobal("rle", static_cast<uint64_t>(block * 2));
    uint32_t gMtf = mb.addGlobal("mtf_table", 256 * 8);
    uint32_t gFreq = mb.addGlobal("freq", 256 * 8);

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t stSlot = f.declareAlloca(48, 8, "state");
    ValueId st = f.allocaAddr(stSlot);
    // [0]=rng [8]=rlen [16]=mtfsum [24]=pos [32]=run [40]=prev
    f.store(Type::I64, st, f.constInt(314159), 0);
    ValueId buf = f.globalAddr(gBuf);
    // Generate text-ish bytes: mostly lowercase, occasionally anything.
    f.forLoopI(0, block, [&](ValueId i) {
        ValueId r = f.call(lcg, {st});
        ValueId rare = f.icmp(Cond::EQ, f.band(r, f.constInt(31)),
                              f.constInt(0));
        f.ifThenElse(
            rare,
            [&] {
                f.storeIdx(Type::I8, buf, i,
                           f.band(r, f.constInt(255)), 1);
            },
            [&] {
                f.storeIdx(Type::I8, buf, i,
                           f.addImm(f.band(f.lshr(r, f.constInt(5)),
                                           f.constInt(7)),
                                    97),
                           1);
            });
    });
    // RLE: runs capped at 255.
    ValueId rle = f.globalAddr(gRle);
    f.store(Type::I64, st, f.constInt(0), 8);   // out len
    f.store(Type::I64, st, f.constInt(0), 24);  // pos
    f.whileLoop(
        [&] {
            return f.icmp(Cond::LT, f.load(Type::I64, st, 24),
                          f.constInt(block));
        },
        [&] {
            ValueId pos = f.load(Type::I64, st, 24);
            ValueId byte = f.loadIdx(Type::I8, buf, pos, 1);
            f.store(Type::I64, st, f.constInt(1), 32); // run
            f.whileLoop(
                [&] {
                    ValueId run = f.load(Type::I64, st, 32);
                    ValueId nxt = f.add(pos, run);
                    ValueId inBounds =
                        f.icmp(Cond::LT, nxt, f.constInt(block));
                    ValueId shortRun =
                        f.icmp(Cond::LT, run, f.constInt(255));
                    ValueId same = f.band(inBounds, shortRun);
                    uint32_t okB = f.newBlock();
                    uint32_t outB = f.newBlock();
                    uint32_t joinB = f.newBlock();
                    // same &&= buf[nxt] == byte, short-circuited.
                    ValueId res = f.newReg(Type::I64);
                    f.condBr(same, okB, outB);
                    f.setBlock(okB);
                    ValueId eq = f.icmp(
                        Cond::EQ, f.loadIdx(Type::I8, buf, nxt, 1),
                        byte);
                    f.copy(res, eq);
                    f.br(joinB);
                    f.setBlock(outB);
                    f.copy(res, f.constInt(0));
                    f.br(joinB);
                    f.setBlock(joinB);
                    return res;
                },
                [&] {
                    f.store(Type::I64, st,
                            f.addImm(f.load(Type::I64, st, 32), 1), 32);
                });
            ValueId run = f.load(Type::I64, st, 32);
            ValueId olen = f.load(Type::I64, st, 8);
            f.storeIdx(Type::I8, rle, olen, run, 1);
            f.storeIdx(Type::I8, rle, f.addImm(olen, 1), byte, 1);
            f.store(Type::I64, st, f.addImm(olen, 2), 8);
            f.store(Type::I64, st, f.add(pos, run), 24);
        });
    // Move-to-front over the RLE output.
    ValueId mtf = f.globalAddr(gMtf);
    f.forLoopI(0, 256, [&](ValueId i) {
        f.storeIdx(Type::I64, mtf, i, i, 8);
    });
    ValueId freq = f.globalAddr(gFreq);
    f.store(Type::I64, st, f.constInt(0), 16);
    ValueId olen = f.load(Type::I64, st, 8);
    f.forLoop(f.constInt(0), olen, [&](ValueId i) {
        ValueId byte = f.loadIdx(Type::I8, rle, i, 1);
        // Find rank of byte (linear search: branchy on purpose).
        f.store(Type::I64, st, f.constInt(0), 40);
        f.whileLoop(
            [&] {
                ValueId r = f.load(Type::I64, st, 40);
                return f.icmp(Cond::NE,
                              f.loadIdx(Type::I64, mtf, r, 8), byte);
            },
            [&] {
                f.store(Type::I64, st,
                        f.addImm(f.load(Type::I64, st, 40), 1), 40);
            });
        ValueId rank = f.load(Type::I64, st, 40);
        f.store(Type::I64, st,
                f.add(f.load(Type::I64, st, 16), rank), 16);
        // Shift [0, rank) up by one; put byte at front.
        f.forLoop(f.constInt(0), rank, [&](ValueId jj) {
            ValueId j = f.sub(rank, f.addImm(jj, 1));
            f.storeIdx(Type::I64, mtf, f.addImm(j, 1),
                       f.loadIdx(Type::I64, mtf, j, 8), 8);
        });
        f.storeIdx(Type::I64, mtf, f.constInt(0), byte, 8);
        ValueId fOld = f.loadIdx(Type::I64, freq, rank, 8);
        f.storeIdx(Type::I64, freq, rank, f.addImm(fOld, 1), 8);
    });
    f.callVoid(mb.builtin(Builtin::PrintI64), {olen});
    f.callVoid(mb.builtin(Builtin::PrintI64),
               {f.load(Type::I64, st, 16)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// --- VERUS: BFS over an implicit transition system --------------------------

Module
buildVerus(ProblemClass cls)
{
    const int64_t m = 8192 * classScale(cls);
    ModuleBuilder mb("verus");
    uint32_t gVisited = mb.addGlobal("visited",
                                     static_cast<uint64_t>(m / 8));
    uint32_t gQueue = mb.addGlobal("queue", static_cast<uint64_t>(m * 8));

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t stSlot = f.declareAlloca(40, 8, "state");
    ValueId st = f.allocaAddr(stSlot);
    // [0]=head [8]=tail [16]=reached [24]=edges [32]=scratch
    ValueId visited = f.globalAddr(gVisited);
    ValueId queue = f.globalAddr(gQueue);
    auto markAndPush = [&](ValueId s) {
        ValueId word = f.lshr(s, f.constInt(6));
        ValueId bit = f.shl(f.constInt(1), f.band(s, f.constInt(63)));
        ValueId cur = f.loadIdx(Type::I64, visited, word, 8);
        ValueId unseen = f.icmp(Cond::EQ, f.band(cur, bit),
                                f.constInt(0));
        f.ifThen(unseen, [&] {
            f.storeIdx(Type::I64, visited, word, f.bor(cur, bit), 8);
            ValueId tail = f.load(Type::I64, st, 8);
            f.storeIdx(Type::I64, queue, tail, s, 8);
            f.store(Type::I64, st, f.addImm(tail, 1), 8);
            f.store(Type::I64, st,
                    f.addImm(f.load(Type::I64, st, 16), 1), 16);
        });
    };
    f.store(Type::I64, st, f.constInt(0), 0);
    f.store(Type::I64, st, f.constInt(0), 8);
    f.store(Type::I64, st, f.constInt(0), 16);
    f.store(Type::I64, st, f.constInt(0), 24);
    markAndPush(f.constInt(1));
    f.whileLoop(
        [&] {
            return f.icmp(Cond::LT, f.load(Type::I64, st, 0),
                          f.load(Type::I64, st, 8));
        },
        [&] {
            ValueId head = f.load(Type::I64, st, 0);
            ValueId s = f.loadIdx(Type::I64, queue, head, 8);
            f.store(Type::I64, st, f.addImm(head, 1), 0);
            f.store(Type::I64, st,
                    f.addImm(f.load(Type::I64, st, 24), 3), 24);
            ValueId mConst = f.constInt(m);
            markAndPush(f.urem(f.addImm(f.mulImm(s, 3), 1), mConst));
            markAndPush(f.urem(f.addImm(f.mulImm(s, 5), 7), mConst));
            markAndPush(f.lshr(s, f.constInt(1)));
        });
    f.callVoid(mb.builtin(Builtin::PrintI64), {f.load(Type::I64, st, 16)});
    f.callVoid(mb.builtin(Builtin::PrintI64), {f.load(Type::I64, st, 24)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// --- REDIS: hash-table GET/SET service loop ---------------------------------

Module
buildRedis(ProblemClass cls)
{
    const int64_t cap = 16384; // power of two
    const int64_t ops = 16384 * classScale(cls);
    ModuleBuilder mb("redis");
    uint32_t lcg = declareLcg(mb);
    uint32_t gKeys = mb.addGlobal("tkeys", cap * 8); // 0 = empty, k+1
    uint32_t gVals = mb.addGlobal("tvals", cap * 8);

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t stSlot = f.declareAlloca(48, 8, "state");
    ValueId st = f.allocaAddr(stSlot);
    // [0]=rng [8]=hits [16]=acc [24]=sets [32]=probe idx [40]=done flag
    f.store(Type::I64, st, f.constInt(1618033988), 0);
    f.store(Type::I64, st, f.constInt(0), 8);
    f.store(Type::I64, st, f.constInt(0), 16);
    f.store(Type::I64, st, f.constInt(0), 24);
    ValueId tk = f.globalAddr(gKeys);
    ValueId tv = f.globalAddr(gVals);
    f.forLoopI(0, ops, [&](ValueId) {
        ValueId r = f.call(lcg, {st});
        ValueId key = f.addImm(f.band(r, f.constInt(8191)), 1);
        ValueId isSet = f.icmp(
            Cond::LT, f.band(f.lshr(r, f.constInt(13)), f.constInt(7)),
            f.constInt(3));
        // Probe from hash(key).
        ValueId h = f.band(f.mulImm(key, 2654435761ll),
                           f.constInt(cap - 1));
        f.store(Type::I64, st, h, 32);
        f.store(Type::I64, st, f.constInt(0), 40);
        f.whileLoop(
            [&] {
                return f.icmp(Cond::EQ, f.load(Type::I64, st, 40),
                              f.constInt(0));
            },
            [&] {
                ValueId idx = f.load(Type::I64, st, 32);
                ValueId slotKey = f.loadIdx(Type::I64, tk, idx, 8);
                ValueId hitHere = f.icmp(Cond::EQ, slotKey, key);
                ValueId empty = f.icmp(Cond::EQ, slotKey,
                                       f.constInt(0));
                ValueId stop = f.bor(hitHere, empty);
                f.ifThenElse(
                    stop,
                    [&] {
                        f.ifThenElse(
                            isSet,
                            [&] {
                                f.storeIdx(Type::I64, tk, idx, key, 8);
                                f.storeIdx(Type::I64, tv, idx,
                                           f.mulImm(key, 3), 8);
                                f.store(Type::I64, st,
                                        f.addImm(f.load(Type::I64, st,
                                                        24),
                                                 1),
                                        24);
                            },
                            [&] {
                                f.ifThen(hitHere, [&] {
                                    f.store(
                                        Type::I64, st,
                                        f.addImm(f.load(Type::I64, st,
                                                        8),
                                                 1),
                                        8);
                                    f.store(
                                        Type::I64, st,
                                        f.add(f.load(Type::I64, st, 16),
                                              f.loadIdx(Type::I64, tv,
                                                        idx, 8)),
                                        16);
                                });
                            });
                        f.store(Type::I64, st, f.constInt(1), 40);
                    },
                    [&] {
                        f.store(Type::I64, st,
                                f.band(f.addImm(idx, 1),
                                       f.constInt(cap - 1)),
                                32);
                    });
            });
    });
    f.callVoid(mb.builtin(Builtin::PrintI64), {f.load(Type::I64, st, 8)});
    f.callVoid(mb.builtin(Builtin::PrintI64),
               {f.load(Type::I64, st, 16)});
    f.callVoid(mb.builtin(Builtin::PrintI64),
               {f.load(Type::I64, st, 24)});
    f.ret(f.constInt(0));
    return mb.finish();
}

// Uniform-signature shims over the kernels above: the table stores one
// builder type; serial kernels ignore the (validated to be 1) count.

Module buildCgT(ProblemClass c, int t) { return buildCg(c, t); }
Module buildIsT(ProblemClass c, int t) { return buildIs(c, t); }
Module buildFtT(ProblemClass c, int t) { return buildFt(c, t); }
Module buildEpT(ProblemClass c, int t) { return buildEp(c, t); }
Module buildMgT(ProblemClass c, int t) { return buildMg(c, t); }
Module buildSpT(ProblemClass c, int t) { return buildSp(c, t); }
Module buildBtT(ProblemClass c, int t) { return buildBt(c, t); }
Module buildBzipT(ProblemClass c, int) { return buildBzip(c); }
Module buildVerusT(ProblemClass c, int) { return buildVerus(c); }
Module buildRedisT(ProblemClass c, int) { return buildRedis(c); }

} // namespace

const std::vector<WorkloadDesc> &
workloadTable()
{
    static const std::vector<WorkloadDesc> table = {
        {WorkloadId::CG, "cg", true, buildCgT},
        {WorkloadId::IS, "is", true, buildIsT},
        {WorkloadId::FT, "ft", true, buildFtT},
        {WorkloadId::EP, "ep", true, buildEpT},
        {WorkloadId::MG, "mg", true, buildMgT},
        {WorkloadId::SP, "sp", true, buildSpT},
        {WorkloadId::BT, "bt", true, buildBtT},
        {WorkloadId::BZIP, "bzip", false, buildBzipT},
        {WorkloadId::VERUS, "verus", false, buildVerusT},
        {WorkloadId::REDIS, "redis", false, buildRedisT},
    };
    return table;
}

Module
buildWorkload(WorkloadId id, ProblemClass cls, int nthreads)
{
    if (nthreads < 1 || nthreads > kMaxThreads)
        fatal("buildWorkload: nthreads %d out of range", nthreads);
    const WorkloadDesc &d = workloadDesc(id);
    if (nthreads > 1 && !d.threadCapable)
        fatal("workload '%s' is serial-only", d.name);
    return d.build(cls, nthreads);
}

} // namespace xisa
