/**
 * @file
 * The benchmark workloads of the paper's evaluation (Section 6), as BIR
 * programs so they are compiled by the CrossBound toolchain and executed
 * (and migrated) for real.
 *
 * The paper uses NAS Parallel Benchmarks (SP, IS, FT, BT, CG, EP, MG)
 * in classes A/B/C, plus bzip2smp, the Verus model checker, and Redis.
 * We implement miniature kernels with the same computational character:
 *
 *  - CG: sparse-matrix power iteration (irregular memory + FP)
 *  - IS: bucket sort of LCG-generated keys (integer, memory)
 *  - FT: strided butterfly-style sweeps (regular memory + FP)
 *  - EP: pseudo-random pair tallying (CPU-bound, trivially parallel)
 *  - MG: 1-D multigrid V-cycles (mixed strides + FP)
 *  - SP: Jacobi 5-point relaxation (memory streaming + FP)
 *  - BT: per-line Thomas solves (FP + data-dependent recurrences)
 *  - BZIP: RLE + move-to-front + entropy accumulation (branchy, byte)
 *  - VERUS: BFS over an implicit transition system (branchy, pointer)
 *  - REDIS: open-addressing hash-table GET/SET service loop
 *
 * Problem classes A/B/C scale the working set, matching the paper's use
 * of classes to produce short- and long-running jobs. The NPB-like
 * kernels take an nthreads parameter (OpenMP-style fork/join with
 * barriers, the POMP role); the other three are serial, as in the
 * paper's usage. Every workload prints a deterministic checksum used by
 * the differential and migration tests.
 */

#ifndef XISA_WORKLOAD_WORKLOADS_HH
#define XISA_WORKLOAD_WORKLOADS_HH

#include <string>
#include <vector>

#include "ir/ir.hh"

namespace xisa {

/** Workload identifiers. */
enum class WorkloadId {
    CG, IS, FT, EP, MG, SP, BT,
    BZIP, VERUS, REDIS,
};

/** NPB-style problem classes. */
enum class ProblemClass { A, B, C };

/**
 * One workload, described once. Adding a workload is one record in
 * workloadTable() (name, thread-capability, builder); every query
 * below -- and the exp/ WorkloadRegistry -- derives from the table,
 * so there are no parallel switches to keep in sync.
 */
struct WorkloadDesc {
    WorkloadId id;
    const char *name;    ///< short name, e.g. "cg"
    bool threadCapable;  ///< accepts nthreads > 1 (the NPB-like set)
    Module (*build)(ProblemClass cls, int nthreads);
};

/** The registration table, in WorkloadId order. */
const std::vector<WorkloadDesc> &workloadTable();

/** Descriptor lookup; null for an unknown name. */
const WorkloadDesc *findWorkload(const std::string &name);
/** Descriptor of an id (never null for a valid id). */
const WorkloadDesc &workloadDesc(WorkloadId id);

/** Short name, e.g. "cg". */
const char *workloadName(WorkloadId id);
/** "A"/"B"/"C". */
const char *className(ProblemClass cls);
/** Parse "A"/"B"/"C" (also lowercase); false on anything else. */
bool parseProblemClass(const std::string &s, ProblemClass *out);

/** All workloads. */
std::vector<WorkloadId> allWorkloads();
/** The NPB-like, thread-capable subset. */
std::vector<WorkloadId> npbWorkloads();
/** True if the workload supports nthreads > 1. */
bool supportsThreads(WorkloadId id);

/**
 * Build the BIR module for a workload.
 *
 * @param id which kernel
 * @param cls problem class (scales the working set 1x/4x/16x)
 * @param nthreads worker count (must be 1 for serial-only workloads)
 */
Module buildWorkload(WorkloadId id, ProblemClass cls, int nthreads = 1);

/** Problem-size scale factor of a class (A=1, B=4, C=16). */
int classScale(ProblemClass cls);

} // namespace xisa

#endif // XISA_WORKLOAD_WORKLOADS_HH
