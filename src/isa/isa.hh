/**
 * @file
 * The two synthetic 64-bit ISAs of CrossBound.
 *
 * The paper migrates threads between ARMv8 (APM X-Gene 1) and x86-64
 * (Xeon E5-1650v2). We reproduce the properties that make that hard with
 * two synthetic ISAs that differ in exactly those dimensions:
 *
 *  - Aether64 (ARM-like): 31 GPRs, link register, 8 register arguments,
 *    10 callee-saved GPRs plus 8 callee-saved FPRs, fixed 4-byte
 *    instruction encoding.
 *  - Xeno64 (x86-like): 16 GPRs, return address pushed on the stack,
 *    6 register arguments, 6 callee-saved GPRs and no callee-saved FPRs,
 *    variable 1-15 byte instruction encoding.
 *
 * Both share little-endian byte order and identical primitive type sizes
 * and alignments, matching the ARM64/x86-64 pair of the paper (see
 * Section 5.2.2, footnote 2).
 */

#ifndef XISA_ISA_ISA_HH
#define XISA_ISA_ISA_HH

#include <cstdint>
#include <string>

namespace xisa {

/** Identifier of a synthetic instruction set architecture. */
enum class IsaId : uint8_t {
    Aether64 = 0, ///< ARM-like RISC
    Xeno64 = 1,   ///< x86-like CISC
};

/** Number of ISAs supported (array sizing helper). */
constexpr int kNumIsas = 2;

/** Short lowercase name, e.g. "aether64". */
const char *isaName(IsaId isa);

/** The other ISA of the pair. */
constexpr IsaId
otherIsa(IsaId isa)
{
    return isa == IsaId::Aether64 ? IsaId::Xeno64 : IsaId::Aether64;
}

/** Condition codes used by BCond / CSet after a Cmp / FCmp. */
enum class Cond : uint8_t {
    EQ, NE,
    LT, LE, GT, GE,       // signed
    ULT, ULE, UGT, UGE,   // unsigned
    Always,
};

/** Textual name of a condition code. */
const char *condName(Cond cond);

/** Logical negation of a condition code. */
Cond negateCond(Cond cond);

/**
 * Machine operations. One shared enum keeps the interpreters small; each
 * backend emits only the subset that is legal for its ISA (e.g. Push/Pop
 * are Xeno64-only, three-address ALU forms are Aether64-only) and the
 * verifier in machine/interp.cc enforces this.
 */
enum class MOp : uint8_t {
    Nop,
    // Data movement.
    MovImm,   ///< rd = imm
    MovReg,   ///< rd = rn
    // Integer ALU, register forms: rd = rn OP rm.
    Add, Sub, Mul, SDiv, UDiv, SRem, URem,
    And, Orr, Eor, Lsl, Lsr, Asr,
    // Integer ALU, immediate forms: rd = rn OP imm.
    AddImm, SubImm, MulImm, AndImm, OrrImm, EorImm,
    LslImm, LsrImm, AsrImm,
    Neg,      ///< rd = -rn
    // Compares and conditional materialization.
    Cmp,      ///< flags = compare(rn, rm)
    CmpImm,   ///< flags = compare(rn, imm)
    CSet,     ///< rd = cond ? 1 : 0
    // Floating point (f64). Register fields index the FPR file.
    FAdd, FSub, FMul, FDiv,   ///< fd = fn OP fm
    FNeg,                     ///< fd = -fn
    FMovReg,                  ///< fd = fn
    FMovImm,                  ///< fd = bit pattern imm
    FCmp,                     ///< flags = compare(fn, fm)
    SCvtF,    ///< fd = (double)(int64)rn   (rn is a GPR)
    FCvtS,    ///< rd = (int64)fn, truncating (rd is a GPR)
    // Memory. Address is rn + imm (displacement) unless noted.
    Ldr,      ///< rd = mem64[rn + imm]
    Ldr32,    ///< rd = zext(mem32[rn + imm])
    LdrS32,   ///< rd = sext(mem32[rn + imm])
    LdrB,     ///< rd = zext(mem8[rn + imm])
    Str,      ///< mem64[rn + imm] = rd
    Str32,    ///< mem32[rn + imm] = low32(rd)
    StrB,     ///< mem8[rn + imm] = low8(rd)
    FLdr,     ///< fd = mem64[rn + imm] (as f64)
    FStr,     ///< mem64[rn + imm] = fd
    LdrIdx,   ///< rd = mem64[rn + rm * imm]   (imm is the scale)
    Ldr32Idx, ///< rd = zext(mem32[rn + rm * imm])
    LdrBIdx,  ///< rd = zext(mem8[rn + rm * imm])
    StrIdx,   ///< mem64[rn + rm * imm] = rd
    Str32Idx, ///< mem32[rn + rm * imm] = low32(rd)
    StrBIdx,  ///< mem8[rn + rm * imm] = low8(rd)
    FLdrIdx,  ///< fd = mem64[rn + rm * imm]
    FStrIdx,  ///< mem64[rn + rm * imm] = fd
    // Stack push/pop (Xeno64 only): SP-relative with SP update.
    Push,     ///< sp -= 8; mem64[sp] = rd
    Pop,      ///< rd = mem64[sp]; sp += 8
    // Control flow. `target` is an instruction index (B/BCond) or a
    // function id (Bl).
    B,        ///< goto target
    BCond,    ///< if (cond) goto target
    Bl,       ///< call function `target`; callSiteId identifies the site
    Blr,      ///< indirect call, callee code address in rn
    Ret,      ///< return to caller
    // Concurrency and system.
    AtomicAdd, ///< rd = fetch_add(mem64[rn], rm) (sequentially consistent)
    TlsBase,   ///< rd = TLS base address of the current thread
    SysCall,   ///< kernel call, number in imm, args per argument regs
    Hlt,       ///< terminate the current thread
    NumOps,
};

/** Textual mnemonic of an operation. */
const char *mopName(MOp op);

/** True if the op reads or writes simulated memory. */
bool mopTouchesMemory(MOp op);

/** True if the op is a control transfer (B/BCond/Bl/Blr/Ret/Hlt). */
bool mopIsControl(MOp op);

/**
 * Link-time relocation attached to a MovImm whose value is a code
 * address that is only known after the layout engine has placed all
 * functions. The placeholder immediate is chosen so the encoded size
 * class cannot change when the final address is patched in.
 */
enum class Reloc : uint8_t {
    None = 0,
    FuncAddr, ///< imm := entry address of function `target`
};

/**
 * One decoded machine instruction.
 *
 * This is the unit both interpreters execute. `size` is the encoded byte
 * size on the owning ISA (fixed 4 on Aether64, variable on Xeno64) and is
 * what gives functions different byte footprints per ISA -- the reason
 * the multi-ISA symbol alignment engine must pad functions.
 */
struct MachInstr {
    MOp op = MOp::Nop;
    Cond cond = Cond::Always;
    uint8_t rd = 0;       ///< destination register (GPR or FPR by op)
    uint8_t rn = 0;       ///< first source / base register
    uint8_t rm = 0;       ///< second source / index register
    int64_t imm = 0;      ///< immediate / displacement / scale / sysno
    uint32_t target = 0;  ///< branch target index / callee / reloc symbol
    uint32_t callSiteId = 0; ///< nonzero on Bl/Blr at stackmapped sites
    uint8_t size = 0;     ///< encoded size in bytes (set by encoder)
    Reloc reloc = Reloc::None; ///< pending link-time patch, if any
};

/** Pseudo function id marking a call-out to the migration runtime. */
constexpr uint32_t kMigrateTarget = 0xffffffffu;

/**
 * Encoded byte size of an instruction on the given ISA.
 *
 * Aether64 is a fixed-width RISC: every instruction is 4 bytes, except
 * that wide immediates are materialized as movz/movk sequences, so
 * MovImm/FMovImm cost 4 bytes per 16 bits of significant immediate.
 * Xeno64 models x86-64 density: 1-2 byte opcodes, a REX-like prefix when
 * any register id >= 8, 1/4/8-byte immediates, 1-byte Push/Pop/Ret.
 */
uint8_t encodedSize(const MachInstr &instr, IsaId isa);

/** Human-readable rendering, e.g. "add x3, x4, x5". */
std::string disasm(const MachInstr &instr, IsaId isa);

} // namespace xisa

#endif // XISA_ISA_ISA_HH
