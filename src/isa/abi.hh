/**
 * @file
 * Application binary interface descriptors for the two synthetic ISAs.
 *
 * The ABI descriptor drives code generation (compiler/), frame layout,
 * stackmap emission, and the runtime register-state mapping r^AB of the
 * paper's Section 4. The two descriptors intentionally disagree on
 * argument registers, callee-saved sets, link-register use, and frame
 * header shape so that cross-ISA stack transformation has real work to
 * do.
 */

#ifndef XISA_ISA_ABI_HH
#define XISA_ISA_ABI_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace xisa {

/** Number of architectural GPRs modeled per ISA file (max of both). */
constexpr int kMaxGpr = 32;
/** Number of architectural FPRs modeled per ISA file. */
constexpr int kMaxFpr = 16;

/**
 * Calling convention and register convention of one ISA.
 *
 * Instances are immutable singletons obtained via AbiInfo::of().
 */
struct AbiInfo {
    IsaId isa;
    const char *name;

    int numGpr;  ///< valid GPR ids are [0, numGpr)
    int numFpr;  ///< valid FPR ids are [0, numFpr)
    int spReg;   ///< stack pointer GPR id
    int fpReg;   ///< frame pointer GPR id
    int linkReg; ///< link register GPR id, or -1 if return addr on stack
    int retReg;  ///< integer/pointer return value GPR
    int fpRetReg; ///< f64 return value FPR

    std::vector<uint8_t> intArgRegs; ///< integer argument GPRs, in order
    std::vector<uint8_t> fpArgRegs;  ///< f64 argument FPRs, in order
    std::vector<uint8_t> calleeSavedGpr; ///< excludes SP and FP
    std::vector<uint8_t> calleeSavedFpr;
    std::vector<uint8_t> scratchGpr; ///< caller-saved allocatable GPRs
    std::vector<uint8_t> scratchFpr; ///< caller-saved allocatable FPRs

    int stackAlign;      ///< required SP alignment at call sites
    bool retAddrOnStack; ///< true: Bl pushes return address (Xeno64)

    /** The singleton descriptor for an ISA. */
    static const AbiInfo &of(IsaId isa);

    /** True if GPR `reg` is callee-saved (including the frame pointer). */
    bool isCalleeSavedGpr(int reg) const;
    /** True if FPR `reg` is callee-saved. */
    bool isCalleeSavedFpr(int reg) const;

    /** Register name for disassembly, e.g. "x19" / "r12" / "sp". */
    std::string gprName(int reg) const;
    /** FPR name for disassembly, e.g. "d8" / "xmm3". */
    std::string fprName(int reg) const;
};

} // namespace xisa

#endif // XISA_ISA_ABI_HH
