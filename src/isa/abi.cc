#include "isa/abi.hh"

#include <algorithm>

#include "util/logging.hh"

namespace xisa {

namespace {

AbiInfo
makeAether64()
{
    AbiInfo abi;
    abi.isa = IsaId::Aether64;
    abi.name = "aether64";
    abi.numGpr = 32; // x0..x30 + SP as id 31
    abi.numFpr = 16; // d0..d15
    abi.spReg = 31;
    abi.fpReg = 29;
    abi.linkReg = 30;
    abi.retReg = 0;
    abi.fpRetReg = 0;
    abi.intArgRegs = {0, 1, 2, 3, 4, 5, 6, 7};
    abi.fpArgRegs = {0, 1, 2, 3, 4, 5, 6, 7};
    abi.calleeSavedGpr = {19, 20, 21, 22, 23, 24, 25, 26, 27, 28};
    abi.calleeSavedFpr = {8, 9, 10, 11, 12, 13, 14, 15};
    // x0..x7 are argument registers; x8..x18 are scratch. x16/x17 are
    // reserved as codegen temporaries (see compiler/backend.cc), so the
    // allocator hands out x8..x15 and x18.
    abi.scratchGpr = {8, 9, 10, 11, 12, 13, 14, 15, 18};
    abi.scratchFpr = {0, 1, 2, 3, 4, 5, 6, 7};
    abi.stackAlign = 16;
    abi.retAddrOnStack = false;
    return abi;
}

AbiInfo
makeXeno64()
{
    AbiInfo abi;
    abi.isa = IsaId::Xeno64;
    abi.name = "xeno64";
    abi.numGpr = 16; // r0..r15 (r0=ax, r4=sp, r5=bp per x86-64 numbering)
    abi.numFpr = 16; // xmm0..xmm15
    abi.spReg = 4;
    abi.fpReg = 5;
    abi.linkReg = -1;
    abi.retReg = 0;
    abi.fpRetReg = 0;
    abi.intArgRegs = {7, 6, 2, 1, 8, 9}; // di, si, dx, cx, r8, r9
    abi.fpArgRegs = {0, 1, 2, 3, 4, 5, 6, 7};
    abi.calleeSavedGpr = {3, 12, 13, 14, 15}; // bx, r12..r15 (bp is FP)
    abi.calleeSavedFpr = {};                  // SysV: no FPRs preserved
    // r10/r11 are codegen temporaries; the allocator hands out ax and
    // the argument registers between calls.
    abi.scratchGpr = {0, 1, 2, 6, 7, 8, 9};
    abi.scratchFpr = {0, 1, 2, 3, 4, 5, 6, 7};
    abi.stackAlign = 16;
    abi.retAddrOnStack = true;
    return abi;
}

} // namespace

const AbiInfo &
AbiInfo::of(IsaId isa)
{
    static const AbiInfo aether = makeAether64();
    static const AbiInfo xeno = makeXeno64();
    return isa == IsaId::Aether64 ? aether : xeno;
}

bool
AbiInfo::isCalleeSavedGpr(int reg) const
{
    if (reg == fpReg)
        return true;
    return std::find(calleeSavedGpr.begin(), calleeSavedGpr.end(), reg) !=
           calleeSavedGpr.end();
}

bool
AbiInfo::isCalleeSavedFpr(int reg) const
{
    return std::find(calleeSavedFpr.begin(), calleeSavedFpr.end(), reg) !=
           calleeSavedFpr.end();
}

std::string
AbiInfo::gprName(int reg) const
{
    if (reg < 0 || reg >= numGpr)
        panic("gprName: register %d out of range for %s", reg, name);
    if (isa == IsaId::Aether64) {
        if (reg == spReg)
            return "sp";
        return strfmt("x%d", reg);
    }
    static const char *xenoNames[16] = {
        "ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    };
    return xenoNames[reg];
}

std::string
AbiInfo::fprName(int reg) const
{
    if (reg < 0 || reg >= numFpr)
        panic("fprName: register %d out of range for %s", reg, name);
    return strfmt(isa == IsaId::Aether64 ? "d%d" : "xmm%d", reg);
}

} // namespace xisa
