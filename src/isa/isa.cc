#include "isa/isa.hh"

#include <cstdlib>

#include "isa/abi.hh"
#include "util/logging.hh"

namespace xisa {

const char *
isaName(IsaId isa)
{
    return isa == IsaId::Aether64 ? "aether64" : "xeno64";
}

const char *
condName(Cond cond)
{
    switch (cond) {
      case Cond::EQ: return "eq";
      case Cond::NE: return "ne";
      case Cond::LT: return "lt";
      case Cond::LE: return "le";
      case Cond::GT: return "gt";
      case Cond::GE: return "ge";
      case Cond::ULT: return "ult";
      case Cond::ULE: return "ule";
      case Cond::UGT: return "ugt";
      case Cond::UGE: return "uge";
      case Cond::Always: return "al";
    }
    return "?";
}

Cond
negateCond(Cond cond)
{
    switch (cond) {
      case Cond::EQ: return Cond::NE;
      case Cond::NE: return Cond::EQ;
      case Cond::LT: return Cond::GE;
      case Cond::LE: return Cond::GT;
      case Cond::GT: return Cond::LE;
      case Cond::GE: return Cond::LT;
      case Cond::ULT: return Cond::UGE;
      case Cond::ULE: return Cond::UGT;
      case Cond::UGT: return Cond::ULE;
      case Cond::UGE: return Cond::ULT;
      case Cond::Always:
        panic("negateCond: cannot negate 'always'");
    }
    panic("negateCond: bad condition");
}

const char *
mopName(MOp op)
{
    switch (op) {
      case MOp::Nop: return "nop";
      case MOp::MovImm: return "movi";
      case MOp::MovReg: return "mov";
      case MOp::Add: return "add";
      case MOp::Sub: return "sub";
      case MOp::Mul: return "mul";
      case MOp::SDiv: return "sdiv";
      case MOp::UDiv: return "udiv";
      case MOp::SRem: return "srem";
      case MOp::URem: return "urem";
      case MOp::And: return "and";
      case MOp::Orr: return "orr";
      case MOp::Eor: return "eor";
      case MOp::Lsl: return "lsl";
      case MOp::Lsr: return "lsr";
      case MOp::Asr: return "asr";
      case MOp::AddImm: return "addi";
      case MOp::SubImm: return "subi";
      case MOp::MulImm: return "muli";
      case MOp::AndImm: return "andi";
      case MOp::OrrImm: return "orri";
      case MOp::EorImm: return "eori";
      case MOp::LslImm: return "lsli";
      case MOp::LsrImm: return "lsri";
      case MOp::AsrImm: return "asri";
      case MOp::Neg: return "neg";
      case MOp::Cmp: return "cmp";
      case MOp::CmpImm: return "cmpi";
      case MOp::CSet: return "cset";
      case MOp::FAdd: return "fadd";
      case MOp::FSub: return "fsub";
      case MOp::FMul: return "fmul";
      case MOp::FDiv: return "fdiv";
      case MOp::FNeg: return "fneg";
      case MOp::FMovReg: return "fmov";
      case MOp::FMovImm: return "fmovi";
      case MOp::FCmp: return "fcmp";
      case MOp::SCvtF: return "scvtf";
      case MOp::FCvtS: return "fcvts";
      case MOp::Ldr: return "ldr";
      case MOp::Ldr32: return "ldr32";
      case MOp::LdrS32: return "ldrs32";
      case MOp::LdrB: return "ldrb";
      case MOp::Str: return "str";
      case MOp::Str32: return "str32";
      case MOp::StrB: return "strb";
      case MOp::FLdr: return "fldr";
      case MOp::FStr: return "fstr";
      case MOp::LdrIdx: return "ldrx";
      case MOp::Ldr32Idx: return "ldr32x";
      case MOp::LdrBIdx: return "ldrbx";
      case MOp::StrIdx: return "strx";
      case MOp::Str32Idx: return "str32x";
      case MOp::StrBIdx: return "strbx";
      case MOp::FLdrIdx: return "fldrx";
      case MOp::FStrIdx: return "fstrx";
      case MOp::Push: return "push";
      case MOp::Pop: return "pop";
      case MOp::B: return "b";
      case MOp::BCond: return "b.cc";
      case MOp::Bl: return "bl";
      case MOp::Blr: return "blr";
      case MOp::Ret: return "ret";
      case MOp::AtomicAdd: return "xadd";
      case MOp::TlsBase: return "tlsbase";
      case MOp::SysCall: return "syscall";
      case MOp::Hlt: return "hlt";
      case MOp::NumOps: break;
    }
    return "?";
}

bool
mopTouchesMemory(MOp op)
{
    switch (op) {
      case MOp::Ldr: case MOp::Ldr32: case MOp::LdrS32: case MOp::LdrB:
      case MOp::Str: case MOp::Str32: case MOp::StrB:
      case MOp::FLdr: case MOp::FStr:
      case MOp::LdrIdx: case MOp::Ldr32Idx: case MOp::LdrBIdx:
      case MOp::StrIdx: case MOp::Str32Idx: case MOp::StrBIdx:
      case MOp::FLdrIdx: case MOp::FStrIdx:
      case MOp::Push: case MOp::Pop:
      case MOp::AtomicAdd:
        return true;
      default:
        return false;
    }
}

bool
mopIsControl(MOp op)
{
    switch (op) {
      case MOp::B: case MOp::BCond: case MOp::Bl: case MOp::Blr:
      case MOp::Ret: case MOp::Hlt:
        return true;
      default:
        return false;
    }
}

namespace {

/** Bytes of significant immediate, in 16-bit granules (>=1). */
int
immGranules16(int64_t imm)
{
    uint64_t u = static_cast<uint64_t>(imm);
    int granules = 1;
    for (int g = 3; g >= 1; --g) {
        if ((u >> (16 * g)) & 0xffff) {
            granules = g + 1;
            break;
        }
    }
    // All-ones upper halves (small negative numbers) encode in one
    // granule via movn-style encodings.
    if (imm < 0 && imm >= -0x8000)
        granules = 1;
    return granules;
}

uint8_t
xenoImmBytes(int64_t imm)
{
    if (imm == 0)
        return 0;
    if (imm >= -128 && imm < 128)
        return 1;
    if (imm >= INT32_MIN && imm <= INT32_MAX)
        return 4;
    return 8;
}

uint8_t
xenoSize(const MachInstr &in)
{
    // Model of x86-64 density: short stack ops, REX prefix for high
    // registers, opcode escape for "SSE-like" FP ops, displacement and
    // immediate bytes as needed.
    auto rex = [&](bool useRm) -> int {
        return (in.rd >= 8 || in.rn >= 8 || (useRm && in.rm >= 8)) ? 1 : 0;
    };
    switch (in.op) {
      case MOp::Nop:
        return 1;
      case MOp::Push: case MOp::Pop:
        return static_cast<uint8_t>(1 + (in.rd >= 8 ? 1 : 0));
      case MOp::Ret:
        return 1;
      case MOp::Hlt: case MOp::SysCall:
        return 2;
      case MOp::B:
        return 5;
      case MOp::BCond:
        return 6;
      case MOp::Bl:
        return 5;
      case MOp::Blr:
        return static_cast<uint8_t>(2 + (in.rn >= 8 ? 1 : 0));
      case MOp::MovImm: {
        int64_t imm = in.imm;
        if (imm >= INT32_MIN && imm <= INT32_MAX)
            return static_cast<uint8_t>(5 + (in.rd >= 8 ? 1 : 0));
        return static_cast<uint8_t>(9 + (in.rd >= 8 ? 1 : 0)); // movabs
      }
      case MOp::FMovImm:
        // Materialized via a rip-relative constant load.
        return 8;
      case MOp::TlsBase:
        return 9; // segment-override mov
      case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv:
      case MOp::FNeg: case MOp::FMovReg: case MOp::FCmp:
      case MOp::SCvtF: case MOp::FCvtS:
        return static_cast<uint8_t>(4 + rex(true));
      case MOp::FLdr: case MOp::FStr:
        return static_cast<uint8_t>(4 + rex(false) + xenoImmBytes(in.imm));
      case MOp::FLdrIdx: case MOp::FStrIdx:
        return static_cast<uint8_t>(5 + rex(true));
      case MOp::Ldr: case MOp::Ldr32: case MOp::LdrS32: case MOp::LdrB:
      case MOp::Str: case MOp::Str32: case MOp::StrB:
        return static_cast<uint8_t>(2 + rex(false) + xenoImmBytes(in.imm));
      case MOp::LdrIdx: case MOp::Ldr32Idx: case MOp::LdrBIdx:
      case MOp::StrIdx: case MOp::Str32Idx: case MOp::StrBIdx:
        return static_cast<uint8_t>(3 + rex(true)); // SIB byte
      case MOp::AtomicAdd:
        return static_cast<uint8_t>(4 + rex(true)); // lock xadd
      case MOp::CSet:
        return 4; // setcc + movzx
      case MOp::Cmp:
        return static_cast<uint8_t>(2 + rex(true));
      case MOp::CmpImm:
        return static_cast<uint8_t>(2 + rex(false) + xenoImmBytes(in.imm));
      case MOp::AddImm: case MOp::SubImm: case MOp::AndImm:
      case MOp::OrrImm: case MOp::EorImm:
        return static_cast<uint8_t>(2 + rex(false) +
                                    std::max<uint8_t>(1,
                                        xenoImmBytes(in.imm)));
      case MOp::MulImm:
        return static_cast<uint8_t>(3 + rex(false) +
                                    std::max<uint8_t>(1,
                                        xenoImmBytes(in.imm)));
      case MOp::LslImm: case MOp::LsrImm: case MOp::AsrImm:
        return static_cast<uint8_t>(3 + rex(false));
      case MOp::SDiv: case MOp::UDiv: case MOp::SRem: case MOp::URem:
        // cqo + idiv, plus the moves the 2-address form needs.
        return static_cast<uint8_t>(5 + rex(true));
      default:
        // Generic 2-address ALU register form.
        return static_cast<uint8_t>(2 + rex(true));
    }
}

uint8_t
aetherSize(const MachInstr &in)
{
    // Fixed-width RISC; wide immediates become movz/movk sequences and
    // large displacements need an address-materialization instruction.
    switch (in.op) {
      case MOp::MovImm:
        return static_cast<uint8_t>(4 * immGranules16(in.imm));
      case MOp::FMovImm:
        return 8; // adrp + ldr from a literal pool
      case MOp::AddImm: case MOp::SubImm: case MOp::CmpImm:
      case MOp::AndImm: case MOp::OrrImm: case MOp::EorImm:
      case MOp::MulImm:
        return static_cast<uint8_t>(
            (in.imm >= -2048 && in.imm < 2048) ? 4 : 8);
      case MOp::Ldr: case MOp::Ldr32: case MOp::LdrS32: case MOp::LdrB:
      case MOp::Str: case MOp::Str32: case MOp::StrB:
      case MOp::FLdr: case MOp::FStr:
        return static_cast<uint8_t>(
            (in.imm >= -256 && in.imm < 16384) ? 4 : 8);
      default:
        return 4;
    }
}

} // namespace

uint8_t
encodedSize(const MachInstr &instr, IsaId isa)
{
    uint8_t size =
        isa == IsaId::Aether64 ? aetherSize(instr) : xenoSize(instr);
    XISA_CHECK(size >= 1 && size <= 16, "instruction size out of range");
    return size;
}

std::string
disasm(const MachInstr &in, IsaId isa)
{
    const AbiInfo &abi = AbiInfo::of(isa);
    auto g = [&](int r) { return abi.gprName(r); };
    auto f = [&](int r) { return abi.fprName(r); };
    const char *name = mopName(in.op);

    switch (in.op) {
      case MOp::Nop: case MOp::Ret: case MOp::Hlt:
        return name;
      case MOp::MovImm:
        return strfmt("%s %s, #%lld", name, g(in.rd).c_str(),
                      static_cast<long long>(in.imm));
      case MOp::MovReg: case MOp::Neg:
        return strfmt("%s %s, %s", name, g(in.rd).c_str(),
                      g(in.rn).c_str());
      case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::SDiv:
      case MOp::UDiv: case MOp::SRem: case MOp::URem: case MOp::And:
      case MOp::Orr: case MOp::Eor: case MOp::Lsl: case MOp::Lsr:
      case MOp::Asr:
        return strfmt("%s %s, %s, %s", name, g(in.rd).c_str(),
                      g(in.rn).c_str(), g(in.rm).c_str());
      case MOp::AddImm: case MOp::SubImm: case MOp::MulImm:
      case MOp::AndImm: case MOp::OrrImm: case MOp::EorImm:
      case MOp::LslImm: case MOp::LsrImm: case MOp::AsrImm:
        return strfmt("%s %s, %s, #%lld", name, g(in.rd).c_str(),
                      g(in.rn).c_str(), static_cast<long long>(in.imm));
      case MOp::Cmp:
        return strfmt("%s %s, %s", name, g(in.rn).c_str(),
                      g(in.rm).c_str());
      case MOp::CmpImm:
        return strfmt("%s %s, #%lld", name, g(in.rn).c_str(),
                      static_cast<long long>(in.imm));
      case MOp::CSet:
        return strfmt("%s %s, %s", name, g(in.rd).c_str(),
                      condName(in.cond));
      case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv:
        return strfmt("%s %s, %s, %s", name, f(in.rd).c_str(),
                      f(in.rn).c_str(), f(in.rm).c_str());
      case MOp::FNeg: case MOp::FMovReg:
        return strfmt("%s %s, %s", name, f(in.rd).c_str(),
                      f(in.rn).c_str());
      case MOp::FMovImm:
        return strfmt("%s %s, #0x%llx", name, f(in.rd).c_str(),
                      static_cast<unsigned long long>(in.imm));
      case MOp::FCmp:
        return strfmt("%s %s, %s", name, f(in.rn).c_str(),
                      f(in.rm).c_str());
      case MOp::SCvtF:
        return strfmt("%s %s, %s", name, f(in.rd).c_str(),
                      g(in.rn).c_str());
      case MOp::FCvtS:
        return strfmt("%s %s, %s", name, g(in.rd).c_str(),
                      f(in.rn).c_str());
      case MOp::Ldr: case MOp::Ldr32: case MOp::LdrS32: case MOp::LdrB:
        return strfmt("%s %s, [%s, #%lld]", name, g(in.rd).c_str(),
                      g(in.rn).c_str(), static_cast<long long>(in.imm));
      case MOp::Str: case MOp::Str32: case MOp::StrB:
        return strfmt("%s %s, [%s, #%lld]", name, g(in.rd).c_str(),
                      g(in.rn).c_str(), static_cast<long long>(in.imm));
      case MOp::FLdr: case MOp::FStr:
        return strfmt("%s %s, [%s, #%lld]", name, f(in.rd).c_str(),
                      g(in.rn).c_str(), static_cast<long long>(in.imm));
      case MOp::LdrIdx: case MOp::Ldr32Idx: case MOp::LdrBIdx:
      case MOp::StrIdx: case MOp::Str32Idx: case MOp::StrBIdx:
        return strfmt("%s %s, [%s, %s, #%lld]", name, g(in.rd).c_str(),
                      g(in.rn).c_str(), g(in.rm).c_str(),
                      static_cast<long long>(in.imm));
      case MOp::FLdrIdx: case MOp::FStrIdx:
        return strfmt("%s %s, [%s, %s, #%lld]", name, f(in.rd).c_str(),
                      g(in.rn).c_str(), g(in.rm).c_str(),
                      static_cast<long long>(in.imm));
      case MOp::Push: case MOp::Pop:
        return strfmt("%s %s", name, g(in.rd).c_str());
      case MOp::B:
        return strfmt("%s .%u", name, in.target);
      case MOp::BCond:
        return strfmt("b.%s .%u", condName(in.cond), in.target);
      case MOp::Bl:
        return strfmt("%s @f%u (site %u)", name, in.target, in.callSiteId);
      case MOp::Blr:
        return strfmt("%s %s (site %u)", name, g(in.rn).c_str(),
                      in.callSiteId);
      case MOp::AtomicAdd:
        return strfmt("%s %s, [%s], %s", name, g(in.rd).c_str(),
                      g(in.rn).c_str(), g(in.rm).c_str());
      case MOp::TlsBase:
        return strfmt("%s %s", name, g(in.rd).c_str());
      case MOp::SysCall:
        return strfmt("%s #%lld", name, static_cast<long long>(in.imm));
      case MOp::NumOps:
        break;
    }
    return "?";
}

} // namespace xisa
