/**
 * @file
 * Serving under SLOs: the open-loop REDIS scenario (ROADMAP item 2).
 *
 * A seeded Poisson/Zipf request stream is sharded across REDIS kernel
 * instances on a xeno + aether pair; the hot shards melt on aether and
 * the migrate scenario live-migrates them to xeno mid-traffic. The
 * spec below is the in-code twin of examples/confs/serving_slo.conf --
 * the conf-equivalence test compares the two stdouts byte-for-byte, so
 * keep them in lockstep.
 *
 * --fault-crash=M@T injects a node crash mid-traffic; T is a FRACTION
 * of the run (serving-kind convention), not seconds, so the same
 * scenario exercises quick and full streams alike.
 */

#include "common.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

/** The in-code twin of examples/confs/serving_slo.conf. */
exp::ExperimentSpec
servingSpec()
{
    exp::ExperimentSpec s;
    s.kind = exp::ExperimentKind::Serving;
    s.figure = "Serving under SLOs";
    s.title = "open-loop REDIS: live shard migration vs static "
              "placement";
    s.benchName = "serving_slo";
    s.singleMachines = "xeno, aether";
    s.singleMachineRefs = {"xeno", "aether"};

    exp::TrafficSpec &t = s.traffic;
    t.seed = 42;
    t.clients = 200000;
    t.requestHz = 0.26;
    t.duration = 2.0;
    t.durationQuick = 0.25;
    t.zipfSkew = 0.99;
    t.keySpace = 65536;
    t.getFraction = 0.9;
    t.sloUs = 800.0;
    t.shards = 8;
    t.placement = {1, 1, 1, 1, 1, 1, 1, 1};
    t.migratePlan = {{6, 0.3, 0}, {1, 0.45, 0}, {5, 0.55, 0}};
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseCommonArgs(
        argc, argv,
        exp::kOptObs | exp::kOptQuick | exp::kOptPerfJson |
            exp::kOptFault | exp::kOptConfig,
        "  --fault-crash=M@T   crash machine M at fraction T of the "
        "run (repeatable)");

    exp::ExperimentSpec spec = servingSpec();
    for (const CrashEvent &c : opts.scriptedCrashes) {
        if (c.machine < 0 ||
            c.machine >=
                static_cast<int>(spec.singleMachineRefs.size()) ||
            c.time < 0 || c.time >= 1) {
            std::fprintf(stderr,
                         "--fault-crash: machine in [0, %zu), time a "
                         "fraction in [0, 1)\n",
                         spec.singleMachineRefs.size());
            return 2;
        }
        spec.cluster.crashPlan.push_back({c.machine, c.time});
        spec.cluster.crashDownSeconds = opts.faultDownSeconds;
    }
    return exp::runExperiment(spec, opts);
}
