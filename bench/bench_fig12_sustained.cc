/**
 * @file
 * Figure 12: sustained workload scheduling study.
 *
 * Ten job sets of 40 jobs each (uniform over the benchmark mix), kept
 * at sustained load. Policies:
 *  - static x86(2): two identical x86 servers, balanced at arrival,
 *    never migrate (the baseline);
 *  - dynamic balanced / unbalanced: the x86+ARM pair with
 *    heterogeneous-ISA migration; unbalanced biases threads toward the
 *    x86 (the paper: unbalanced scheduling saves energy on
 *    heterogeneous machines).
 * The ARM server's power uses the McPAT FinFET projection (x0.1), as
 * in the paper. Reported: per-machine energy for each policy and the
 * makespan ratio of the dynamic policies to the static baseline.
 * Paper: unbalanced up to -22.5% (avg -11.6%), balanced avg -7.9%,
 * at ~1.49x makespan.
 */

#include "common.hh"
#include "sched/jobsets.hh"
#include "util/stats.hh"

using namespace xisa;
using namespace xisa::bench;

int
main(int argc, char **argv)
{
    Options opts = parseCommonArgs(argc, argv,
                                   kOptObs | kOptQuick | kOptConfig);
    banner("Figure 12", "sustained workload: energy by machine and "
                        "policy; makespan ratio");
    JobProfileTable table = JobProfileTable::calibrate();
    ClusterSim staticX86(makeX86X86Pool(), table);
    ClusterSim balanced(makeHeterogeneousPool(true, 1.0), table);
    ClusterSim unbalanced(makeHeterogeneousPool(true, 2.0), table);

    const int numSets = quickMode() ? 3 : 10;
    std::printf("\n%-6s | %21s | %25s | %25s | %7s %7s\n", "set",
                "static x86(2) kJ", "dyn-balanced kJ (x86/arm)",
                "dyn-unbalanced kJ (x86/arm)", "mkspB", "mkspU");
    RunningStat dB, dU, mB, mU;
    for (int set = 0; set < numSets; ++set) {
        auto jobs = makeSustainedSet(1000 + set);
        ClusterResult s = staticX86.run(jobs, Policy::StaticBalanced);
        ClusterResult b = balanced.run(jobs, Policy::DynamicBalanced);
        ClusterResult u =
            unbalanced.run(jobs, Policy::DynamicUnbalanced);
        double sk = s.totalEnergy / 1e3;
        std::printf("set-%-2d | %9.1f (%4.1f/%4.1f) | %9.1f (%4.1f/%4.1f)"
                    " | %9.1f (%4.1f/%4.1f) | %6.2fx %6.2fx\n",
                    set, sk, s.energyJoules[0] / 1e3,
                    s.energyJoules[1] / 1e3, b.totalEnergy / 1e3,
                    b.energyJoules[0] / 1e3, b.energyJoules[1] / 1e3,
                    u.totalEnergy / 1e3, u.energyJoules[0] / 1e3,
                    u.energyJoules[1] / 1e3, b.makespan / s.makespan,
                    u.makespan / s.makespan);
        dB.add((1.0 - b.totalEnergy / s.totalEnergy) * 100);
        dU.add((1.0 - u.totalEnergy / s.totalEnergy) * 100);
        mB.add(b.makespan / s.makespan);
        mU.add(u.makespan / s.makespan);
    }
    std::printf("\nEnergy reduction vs static x86(2): balanced avg "
                "%.1f%% (max %.1f%%), unbalanced avg %.1f%% (max "
                "%.1f%%)\n",
                dB.mean(), dB.max(), dU.mean(), dU.max());
    std::printf("Makespan ratio: balanced avg %.2fx, unbalanced avg "
                "%.2fx\n",
                mB.mean(), mU.mean());
    std::printf("(Paper: unbalanced up to 22.5%%, avg 11.6%%; balanced "
                "avg 7.9%%; ~1.49x makespan.)\n");
    writeOutputs(opts, unbalanced.statRegistry());
    return 0;
}
