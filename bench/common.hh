/**
 * @file
 * Shared helpers for the experiment harnesses. Each bench binary
 * regenerates one table or figure of the paper; these helpers keep the
 * output format and run plumbing consistent.
 *
 * Set XISA_QUICK=1 in the environment to shrink sweeps (useful in CI);
 * the full sweeps match the paper's configurations.
 */

#ifndef XISA_BENCH_COMMON_HH
#define XISA_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "compiler/compile.hh"
#include "machine/node.hh"
#include "os/os.hh"
#include "workload/workloads.hh"

namespace xisa::bench {

/** True if the harness should run a reduced sweep. */
inline bool
quickMode()
{
    const char *env = std::getenv("XISA_QUICK");
    return env && env[0] == '1';
}

/** Banner naming the paper artifact being regenerated. */
inline void
banner(const char *figure, const char *what)
{
    std::printf("==============================================================\n");
    std::printf("%s -- %s\n", figure, what);
    std::printf("(CrossBound reproduction; shapes comparable, absolute\n");
    std::printf(" numbers are simulator-scale, see EXPERIMENTS.md)\n");
    std::printf("==============================================================\n");
}

/** Run a workload to completion on a single node of the given spec. */
inline OsRunResult
runSingleNode(const MultiIsaBinary &bin, const NodeSpec &spec)
{
    OsConfig cfg;
    cfg.nodes = {spec};
    ReplicatedOS os(bin, cfg);
    os.load(0);
    return os.run();
}

/** Thread sweep used by Figs. 1 and 6-9. */
inline std::vector<int>
threadSweep()
{
    return quickMode() ? std::vector<int>{1, 4}
                       : std::vector<int>{1, 2, 4, 8};
}

/** Class sweep used by most figures. */
inline std::vector<ProblemClass>
classSweep()
{
    return quickMode()
               ? std::vector<ProblemClass>{ProblemClass::A}
               : std::vector<ProblemClass>{ProblemClass::A,
                                           ProblemClass::B,
                                           ProblemClass::C};
}

} // namespace xisa::bench

#endif // XISA_BENCH_COMMON_HH
