/**
 * @file
 * Shared helpers for the experiment harnesses. Each bench binary
 * regenerates one table or figure of the paper; these helpers keep the
 * output format and run plumbing consistent.
 *
 * Set XISA_QUICK=1 in the environment to shrink sweeps (useful in CI);
 * the full sweeps match the paper's configurations.
 */

#ifndef XISA_BENCH_COMMON_HH
#define XISA_BENCH_COMMON_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compile.hh"
#include "machine/node.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "os/os.hh"
#include "workload/workloads.hh"

namespace xisa::bench {

/** True if the harness should run a reduced sweep. */
inline bool
quickMode()
{
    const char *env = std::getenv("XISA_QUICK");
    return env && env[0] == '1';
}

/** Banner naming the paper artifact being regenerated. */
inline void
banner(const char *figure, const char *what)
{
    std::printf("==============================================================\n");
    std::printf("%s -- %s\n", figure, what);
    std::printf("(CrossBound reproduction; shapes comparable, absolute\n");
    std::printf(" numbers are simulator-scale, see EXPERIMENTS.md)\n");
    std::printf("==============================================================\n");
}

/** Run a workload to completion on a single node of the given spec. */
inline OsRunResult
runSingleNode(const MultiIsaBinary &bin, const NodeSpec &spec)
{
    OsConfig cfg;
    cfg.nodes = {spec};
    ReplicatedOS os(bin, cfg);
    os.load(0);
    return os.run();
}

/** Thread sweep used by Figs. 1 and 6-9. */
inline std::vector<int>
threadSweep()
{
    return quickMode() ? std::vector<int>{1, 4}
                       : std::vector<int>{1, 2, 4, 8};
}

/** Class sweep used by most figures. */
inline std::vector<ProblemClass>
classSweep()
{
    return quickMode()
               ? std::vector<ProblemClass>{ProblemClass::A}
               : std::vector<ProblemClass>{ProblemClass::A,
                                           ProblemClass::B,
                                           ProblemClass::C};
}

/**
 * Worker count of the sweep driver: XISA_BENCH_THREADS when set, else
 * the hardware concurrency. Forced to 1 while the event tracer is
 * armed -- the process-global Tracer and the ambient TraceCursor are
 * unsynchronized by design (zero hot-path cost), so traced runs must
 * stay single-threaded.
 */
inline int
sweepThreads()
{
    if (obs::traceEnabled())
        return 1;
    if (const char *env = std::getenv("XISA_BENCH_THREADS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

/**
 * Run `n` independent sweep configurations, possibly in parallel, and
 * return their results in index order.
 *
 * Each call fn(i) must be self-contained: build its own module, own its
 * ReplicatedOS / ClusterSim (and thus its own StatRegistry), and derive
 * any seed deterministically from `i` -- never from shared state. Under
 * those rules the schedule cannot affect the results, so a parallel
 * sweep is bit-identical to the sequential one: workers pull indices
 * from an atomic counter, write into their own slot, and the caller
 * prints from the ordered vector after the join.
 */
template <typename Fn>
auto
runSweep(size_t n, Fn fn) -> std::vector<decltype(fn(size_t{0}))>
{
    using R = decltype(fn(size_t{0}));
    std::vector<R> results(n);
    size_t workers = static_cast<size_t>(sweepThreads());
    if (workers > n)
        workers = n ? n : 1;
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            results[i] = fn(i);
        return results;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1))
                results[i] = fn(i);
        });
    }
    for (std::thread &t : pool)
        t.join();
    return results;
}

/**
 * Observability flags shared by the harnesses:
 *   --stats            dump the stat registry (human form) to stdout
 *   --stats-json FILE  write the stat registry as JSON
 *   --trace-out FILE   enable the event tracer and write Chrome
 *                      trace-event JSON (chrome://tracing / Perfetto)
 */
struct ObsOptions {
    std::string statsJsonPath;
    std::string traceOutPath;
    bool dumpStats = false;
};

/** Parse the observability flags; exits on unknown arguments. Passing
 *  --trace-out arms the tracer for the whole run. */
inline ObsOptions
parseObsArgs(int argc, char **argv)
{
    ObsOptions o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--stats-json") {
            o.statsJsonPath = val();
        } else if (a == "--trace-out") {
            o.traceOutPath = val();
        } else if (a == "--stats") {
            o.dumpStats = true;
        } else {
            std::fprintf(stderr,
                         "unknown argument: %s\n"
                         "usage: %s [--stats] [--stats-json FILE] "
                         "[--trace-out FILE]\n",
                         a.c_str(), argv[0]);
            std::exit(2);
        }
    }
    if (!o.traceOutPath.empty())
        obs::setTraceEnabled(true);
    return o;
}

/** Emit whatever outputs the flags requested from `reg` and the global
 *  tracer; call once at the end of the harness. */
inline void
writeObsOutputs(const ObsOptions &o, obs::StatRegistry &reg)
{
    if (o.dumpStats)
        reg.dump(std::cout);
    if (!o.statsJsonPath.empty()) {
        std::ofstream f(o.statsJsonPath);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.statsJsonPath.c_str());
            std::exit(1);
        }
        reg.dumpJson(f);
        std::printf("stats json: %s\n", o.statsJsonPath.c_str());
    }
    if (!o.traceOutPath.empty()) {
        std::ofstream f(o.traceOutPath);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.traceOutPath.c_str());
            std::exit(1);
        }
        obs::Tracer::global().exportChromeTrace(f);
        std::printf("trace: %s (%zu events, %llu overwritten)\n",
                    o.traceOutPath.c_str(),
                    obs::Tracer::global().size(),
                    static_cast<unsigned long long>(
                        obs::Tracer::global().dropped()));
    }
}

} // namespace xisa::bench

#endif // XISA_BENCH_COMMON_HH
