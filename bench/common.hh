/**
 * @file
 * Shared helpers for the experiment harnesses. Each bench binary
 * regenerates one table or figure of the paper; the run plumbing
 * (quick mode, banner, sweep driver) and the flag grammar live in
 * src/exp/ and are shared with the config-driven xisa_exp runner, so
 * a conf that mirrors a bench reproduces its stdout byte-for-byte.
 *
 * Set XISA_QUICK=1 in the environment (or pass --quick where enabled)
 * to shrink sweeps; the full sweeps match the paper's configurations.
 */

#ifndef XISA_BENCH_COMMON_HH
#define XISA_BENCH_COMMON_HH

#include <cstdio>
#include <vector>

#include "compiler/compile.hh"
#include "exp/options.hh"
#include "exp/sweep.hh"
#include "machine/node.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "os/os.hh"
#include "workload/workloads.hh"

namespace xisa::bench {

using xisa::exp::banner;
using xisa::exp::quickMode;
using xisa::exp::runSingleNode;
using xisa::exp::runSweep;
using xisa::exp::sweepThreads;

using xisa::exp::kOptConfig;
using xisa::exp::kOptFault;
using xisa::exp::kOptObs;
using xisa::exp::kOptPerfJson;
using xisa::exp::kOptQuick;
using xisa::exp::Options;
using xisa::exp::parseCommonArgs;
using xisa::exp::writeOutputs;

/** Thread sweep used by Figs. 1 and 6-9. */
inline std::vector<int>
threadSweep()
{
    return quickMode() ? std::vector<int>{1, 4}
                       : std::vector<int>{1, 2, 4, 8};
}

/** Class sweep used by most figures. */
inline std::vector<ProblemClass>
classSweep()
{
    return quickMode()
               ? std::vector<ProblemClass>{ProblemClass::A}
               : std::vector<ProblemClass>{ProblemClass::A,
                                           ProblemClass::B,
                                           ProblemClass::C};
}

} // namespace xisa::bench

#endif // XISA_BENCH_COMMON_HH
