/**
 * @file
 * Figure 12 under fire: the sustained-workload scheduling study rerun
 * on a lossy interconnect with machine crashes.
 *
 * The paper's evaluation assumes a perfect link and immortal servers;
 * this harness sweeps message-drop rates (plus optional latency spikes,
 * partition windows and seeded machine crashes) and reports how the
 * dynamic policies' energy/EDP advantage degrades as the fabric gets
 * worse. Jobs checkpoint periodically; a crash rolls its machine's jobs
 * back to their last checkpoint and the dynamic policies fail them over
 * to the surviving machine, so energy charges the lost work.
 *
 * Flags (in addition to the shared --stats/--stats-json/--trace-out):
 *   --fault-drop P        single drop probability instead of the sweep
 *   --fault-seed S        fault-plan + crash-plan seed (default 1)
 *   --fault-partition P,L every P messages, L sends fail fast
 *                         (sugar: FaultPlan normalizes the pair into
 *                         a whole-link cut-set, the degenerate
 *                         FaultCut with an empty sideA -- one code
 *                         path with the topology-derived cuts, same
 *                         bytes as the pre-cut-set implementation)
 *   --fault-crashes N     machine crashes per run (default 2)
 *   --fault-down SEC      crash downtime, seconds (default 30)
 *   --fault-crash M@T     crash machine M at T seconds (repeatable;
 *                         replaces the seeded random crash plan, so a
 *                         scenario replays exactly)
 */

#include <vector>

#include "common.hh"
#include "sched/jobsets.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

/** Seeded crash schedule: `count` crashes at random times in the first
 *  `horizon` seconds, alternating over the machines. */
std::vector<CrashEvent>
makeCrashPlan(uint64_t seed, int count, double horizon, int machines,
              double downSeconds)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 7);
    std::vector<CrashEvent> plan;
    for (int i = 0; i < count; ++i) {
        CrashEvent ev;
        ev.time = rng.uniform() * horizon;
        ev.machine = static_cast<int>(rng.below(
            static_cast<uint64_t>(machines)));
        ev.downSeconds = downSeconds;
        plan.push_back(ev);
    }
    return plan;
}

} // namespace

int
main(int argc, char **argv)
{
    Options fa = parseCommonArgs(
        argc, argv, kOptObs | kOptFault | kOptQuick | kOptConfig);
    banner("Fig. 12 under faults",
           "sustained workload on a lossy fabric with machine crashes");
    JobProfileTable table = JobProfileTable::calibrate();

    std::vector<double> dropRates = {0.0, 0.01, 0.05, 0.1, 0.2};
    if (fa.faultDrop >= 0)
        dropRates = {fa.faultDrop};
    else if (quickMode())
        dropRates = {0.0, 0.05, 0.2};
    const int numSets = quickMode() ? 2 : 5;

    std::printf("\nfault seed %llu, %d crash(es)/run, %.0f s downtime",
                static_cast<unsigned long long>(fa.faultSeed),
                fa.faultCrashes, fa.faultDownSeconds);
    if (fa.faultPartitionPeriod)
        std::printf(", partition %llu/%llu msgs",
                    static_cast<unsigned long long>(fa.faultPartitionPeriod),
                    static_cast<unsigned long long>(fa.faultPartitionLen));
    if (!fa.scriptedCrashes.empty()) {
        std::printf(", scripted crashes:");
        for (const CrashEvent &ev : fa.scriptedCrashes)
            std::printf(" %d@%.0fs", ev.machine, ev.time);
    }
    std::printf("\n\n%-6s | %9s %7s %10s | %4s %4s %4s %8s %8s | %8s\n",
                "drop", "energy kJ", "mksp s", "EDP kJ*s", "crsh",
                "fail", "rstr", "lost s", "recov s", "retries");

    double baseEdp = 0;
    uint64_t deferred = 0;
    obs::StatRegistry *lastStats = nullptr;
    static std::vector<ClusterSim *> sims; // keep alive for obs dump
    for (double drop : dropRates) {
        ClusterSim::Config cc;
        cc.net.faults.seed = fa.faultSeed;
        cc.net.faults.dropProb = drop;
        cc.net.faults.spikeProb = drop / 2;
        cc.net.faults.partitionPeriodMsgs = fa.faultPartitionPeriod;
        cc.net.faults.partitionLenMsgs = fa.faultPartitionLen;
        RunningStat energy, makespan, edp;
        int crashes = 0, failovers = 0, restarts = 0;
        double lost = 0, recovered = 0;
        auto *sim = new ClusterSim(makeHeterogeneousPool(true, 1.0),
                                   table, cc);
        sims.push_back(sim);
        // Bind the handle once per sim; the per-set loop and the final
        // row read it without re-hashing the dotted name.
        const obs::Counter *retries =
            sim->statRegistry().findCounter("xfault.retries");
        for (int set = 0; set < numSets; ++set) {
            auto jobs = makeSustainedSet(1000 + static_cast<uint64_t>(set));
            if (!fa.scriptedCrashes.empty()) {
                // Scripted plan: the exact same machines die at the
                // exact same instants in every set, so a recovery
                // scenario replays byte-for-byte.
                sim->setCrashPlan(fa.scriptedCrashes);
            } else if (fa.faultCrashes > 0) {
                // Crash inside the fault-free makespan so the failover
                // path actually fires.
                sim->setCrashPlan(makeCrashPlan(
                    fa.faultSeed + static_cast<uint64_t>(set),
                    fa.faultCrashes, 400.0, 2, fa.faultDownSeconds));
            }
            ClusterResult r = sim->run(jobs, Policy::DynamicBalanced);
            energy.add(r.totalEnergy / 1e3);
            makespan.add(r.makespan);
            edp.add(r.edp / 1e3);
            crashes += r.crashes;
            failovers += r.failovers;
            for (const auto &kv : r.restartCounts)
                restarts += kv.second;
            lost += r.lostWorkSeconds;
            recovered += r.recoveredWorkSeconds;
        }
        lastStats = &sim->statRegistry();
        if (const obs::Counter *d = sim->statRegistry().findCounter(
                "xfault.crashes_deferred"))
            deferred += d->value();
        if (drop == 0.0)
            baseEdp = edp.mean();
        std::printf("%5.2f%% | %9.1f %7.1f %10.1f | %4d %4d %4d %8.1f"
                    " %8.1f | %8llu",
                    drop * 100, energy.mean(), makespan.mean(),
                    edp.mean(), crashes, failovers, restarts, lost,
                    recovered,
                    static_cast<unsigned long long>(
                        retries ? retries->value() : 0));
        if (baseEdp > 0 && drop > 0)
            std::printf("   (EDP %+.1f%%)",
                        (edp.mean() / baseEdp - 1.0) * 100);
        std::printf("\n");
    }
    std::printf("\nEDP degrades with fault intensity: retries inflate "
                "migration cost,\ncrash rollback discards work the "
                "energy meter already charged.\n");
    if (deferred > 0)
        std::printf("%llu crash(es) hit an already-down machine and "
                    "were deferred past its reboot.\n",
                    static_cast<unsigned long long>(deferred));
    if (lastStats)
        writeOutputs(fa, *lastStats);
    return 0;
}
