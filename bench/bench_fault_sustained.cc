/**
 * @file
 * Figure 12 under fire: the sustained-workload scheduling study rerun
 * on a lossy interconnect with machine crashes.
 *
 * The paper's evaluation assumes a perfect link and immortal servers;
 * this harness sweeps message-drop rates (plus optional latency spikes,
 * partition windows and seeded machine crashes) and reports how the
 * dynamic policies' energy/EDP advantage degrades as the fabric gets
 * worse. Jobs checkpoint periodically; a crash rolls its machine's jobs
 * back to their last checkpoint and the dynamic policies fail them over
 * to the surviving machine, so energy charges the lost work.
 *
 * Flags (in addition to the shared --stats/--stats-json/--trace-out):
 *   --fault-drop P        single drop probability instead of the sweep
 *   --fault-seed S        fault-plan + crash-plan seed (default 1)
 *   --fault-partition P,L every P messages, L sends fail fast
 *   --fault-crashes N     machine crashes per run (default 2)
 *   --fault-down SEC      crash downtime, seconds (default 30)
 *   --fault-crash M@T     crash machine M at T seconds (repeatable;
 *                         replaces the seeded random crash plan, so a
 *                         scenario replays exactly)
 */

#include <cstring>
#include <vector>

#include "common.hh"
#include "sched/jobsets.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

struct FaultArgs {
    ObsOptions obs;
    double dropOverride = -1;
    uint64_t seed = 1;
    uint64_t partitionPeriod = 0;
    uint64_t partitionLen = 0;
    int numCrashes = 2;
    double downSeconds = 30.0;
    std::vector<CrashEvent> scriptedCrashes;
};

FaultArgs
parseArgs(int argc, char **argv)
{
    FaultArgs fa;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--fault-drop") {
            fa.dropOverride = std::stod(val());
        } else if (a == "--fault-seed") {
            fa.seed = std::stoull(val());
        } else if (a == "--fault-partition") {
            std::string v = val();
            size_t comma = v.find(',');
            if (comma == std::string::npos) {
                std::fprintf(stderr,
                             "--fault-partition wants PERIOD,LEN\n");
                std::exit(2);
            }
            fa.partitionPeriod = std::stoull(v.substr(0, comma));
            fa.partitionLen = std::stoull(v.substr(comma + 1));
        } else if (a == "--fault-crashes") {
            fa.numCrashes = std::stoi(val());
        } else if (a == "--fault-down") {
            fa.downSeconds = std::stod(val());
        } else if (a.rfind("--fault-crash=", 0) == 0) {
            std::string v = a.substr(std::strlen("--fault-crash="));
            size_t at = v.find('@');
            if (at == std::string::npos) {
                std::fprintf(stderr,
                             "--fault-crash wants MACHINE@SECONDS\n");
                std::exit(2);
            }
            CrashEvent ev;
            ev.machine = std::stoi(v.substr(0, at));
            ev.time = std::stod(v.substr(at + 1));
            fa.scriptedCrashes.push_back(ev);
        } else if (a == "--stats-json") {
            fa.obs.statsJsonPath = val();
        } else if (a == "--trace-out") {
            fa.obs.traceOutPath = val();
        } else if (a == "--stats") {
            fa.obs.dumpStats = true;
        } else {
            std::fprintf(
                stderr,
                "unknown argument: %s\n"
                "usage: %s [--fault-drop P] [--fault-seed S]\n"
                "          [--fault-partition PERIOD,LEN]"
                " [--fault-crashes N]\n"
                "          [--fault-down SEC] [--fault-crash M@T]..."
                " [--stats]\n"
                "          [--stats-json FILE] [--trace-out FILE]\n",
                a.c_str(), argv[0]);
            std::exit(2);
        }
    }
    // --fault-down applies to scripted crashes regardless of flag
    // order on the command line.
    for (CrashEvent &ev : fa.scriptedCrashes)
        ev.downSeconds = fa.downSeconds;
    if (!fa.obs.traceOutPath.empty())
        obs::setTraceEnabled(true);
    return fa;
}

/** Seeded crash schedule: `count` crashes at random times in the first
 *  `horizon` seconds, alternating over the machines. */
std::vector<CrashEvent>
makeCrashPlan(uint64_t seed, int count, double horizon, int machines,
              double downSeconds)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 7);
    std::vector<CrashEvent> plan;
    for (int i = 0; i < count; ++i) {
        CrashEvent ev;
        ev.time = rng.uniform() * horizon;
        ev.machine = static_cast<int>(rng.below(
            static_cast<uint64_t>(machines)));
        ev.downSeconds = downSeconds;
        plan.push_back(ev);
    }
    return plan;
}

} // namespace

int
main(int argc, char **argv)
{
    FaultArgs fa = parseArgs(argc, argv);
    banner("Fig. 12 under faults",
           "sustained workload on a lossy fabric with machine crashes");
    JobProfileTable table = JobProfileTable::calibrate();

    std::vector<double> dropRates = {0.0, 0.01, 0.05, 0.1, 0.2};
    if (fa.dropOverride >= 0)
        dropRates = {fa.dropOverride};
    else if (quickMode())
        dropRates = {0.0, 0.05, 0.2};
    const int numSets = quickMode() ? 2 : 5;

    std::printf("\nfault seed %llu, %d crash(es)/run, %.0f s downtime",
                static_cast<unsigned long long>(fa.seed),
                fa.numCrashes, fa.downSeconds);
    if (fa.partitionPeriod)
        std::printf(", partition %llu/%llu msgs",
                    static_cast<unsigned long long>(fa.partitionPeriod),
                    static_cast<unsigned long long>(fa.partitionLen));
    if (!fa.scriptedCrashes.empty()) {
        std::printf(", scripted crashes:");
        for (const CrashEvent &ev : fa.scriptedCrashes)
            std::printf(" %d@%.0fs", ev.machine, ev.time);
    }
    std::printf("\n\n%-6s | %9s %7s %10s | %4s %4s %4s %8s %8s | %8s\n",
                "drop", "energy kJ", "mksp s", "EDP kJ*s", "crsh",
                "fail", "rstr", "lost s", "recov s", "retries");

    double baseEdp = 0;
    obs::StatRegistry *lastStats = nullptr;
    static std::vector<ClusterSim *> sims; // keep alive for obs dump
    for (double drop : dropRates) {
        ClusterSim::Config cc;
        cc.net.faults.seed = fa.seed;
        cc.net.faults.dropProb = drop;
        cc.net.faults.spikeProb = drop / 2;
        cc.net.faults.partitionPeriodMsgs = fa.partitionPeriod;
        cc.net.faults.partitionLenMsgs = fa.partitionLen;
        RunningStat energy, makespan, edp;
        int crashes = 0, failovers = 0, restarts = 0;
        double lost = 0, recovered = 0;
        auto *sim = new ClusterSim(makeHeterogeneousPool(true, 1.0),
                                   table, cc);
        sims.push_back(sim);
        // Bind the handle once per sim; the per-set loop and the final
        // row read it without re-hashing the dotted name.
        const obs::Counter *retries =
            sim->statRegistry().findCounter("xfault.retries");
        for (int set = 0; set < numSets; ++set) {
            auto jobs = makeSustainedSet(1000 + static_cast<uint64_t>(set));
            if (!fa.scriptedCrashes.empty()) {
                // Scripted plan: the exact same machines die at the
                // exact same instants in every set, so a recovery
                // scenario replays byte-for-byte.
                sim->setCrashPlan(fa.scriptedCrashes);
            } else if (fa.numCrashes > 0) {
                // Crash inside the fault-free makespan so the failover
                // path actually fires.
                sim->setCrashPlan(makeCrashPlan(
                    fa.seed + static_cast<uint64_t>(set),
                    fa.numCrashes, 400.0, 2, fa.downSeconds));
            }
            ClusterResult r = sim->run(jobs, Policy::DynamicBalanced);
            energy.add(r.totalEnergy / 1e3);
            makespan.add(r.makespan);
            edp.add(r.edp / 1e3);
            crashes += r.crashes;
            failovers += r.failovers;
            for (const auto &kv : r.restartCounts)
                restarts += kv.second;
            lost += r.lostWorkSeconds;
            recovered += r.recoveredWorkSeconds;
        }
        lastStats = &sim->statRegistry();
        if (drop == 0.0)
            baseEdp = edp.mean();
        std::printf("%5.2f%% | %9.1f %7.1f %10.1f | %4d %4d %4d %8.1f"
                    " %8.1f | %8llu",
                    drop * 100, energy.mean(), makespan.mean(),
                    edp.mean(), crashes, failovers, restarts, lost,
                    recovered,
                    static_cast<unsigned long long>(
                        retries ? retries->value() : 0));
        if (baseEdp > 0 && drop > 0)
            std::printf("   (EDP %+.1f%%)",
                        (edp.mean() / baseEdp - 1.0) * 100);
        std::printf("\n");
    }
    std::printf("\nEDP degrades with fault intensity: retries inflate "
                "migration cost,\ncrash rollback discards work the "
                "energy meter already charged.\n");
    if (lastStats)
        writeObsOutputs(fa.obs, *lastStats);
    return 0;
}
