/**
 * @file
 * Figure 1: slowdown of DBT emulation versus native execution.
 *
 * Top series: applications compiled for ARM (Aether64), emulated on the
 * x86 (Xeno64) server, relative to running natively on the ARM server.
 * Bottom series: the reverse. Sweeps NPB {SP, IS, FT, BT, CG} x classes
 * {A,B,C} x threads {1,2,4,8}, plus the Redis check from Section 2
 * (paper: 2.6x for ARM-emulation, 34x for x86-emulation).
 */

#include "common.hh"
#include "emu/dbt.hh"

using namespace xisa;
using namespace xisa::bench;

int
main()
{
    banner("Figure 1", "emulation slowdown vs native (QEMU-style DBT)");
    const std::vector<WorkloadId> wls = {WorkloadId::SP, WorkloadId::IS,
                                         WorkloadId::FT, WorkloadId::BT,
                                         WorkloadId::CG};
    NodeSpec x86 = makeXenoServer();
    NodeSpec arm = makeAetherServer();

    std::printf("\n-- ARM binaries emulated on x86 (vs native ARM) --\n");
    std::printf("%-4s %-6s %-7s %12s\n", "wl", "class", "threads",
                "slowdown");
    for (WorkloadId wl : wls) {
        for (ProblemClass cls : classSweep()) {
            for (int t : threadSweep()) {
                MultiIsaBinary bin =
                    compileModule(buildWorkload(wl, cls, t));
                EmulationResult r =
                    emulate(bin, IsaId::Aether64, x86, arm);
                std::printf("%-4s %-6s %-7d %11.1fx\n",
                            workloadName(wl), className(cls), t,
                            r.slowdown);
            }
        }
    }

    std::printf("\n-- x86 binaries emulated on ARM (vs native x86) --\n");
    std::printf("%-4s %-6s %-7s %12s\n", "wl", "class", "threads",
                "slowdown");
    for (WorkloadId wl : wls) {
        for (ProblemClass cls : classSweep()) {
            for (int t : threadSweep()) {
                MultiIsaBinary bin =
                    compileModule(buildWorkload(wl, cls, t));
                EmulationResult r =
                    emulate(bin, IsaId::Xeno64, arm, x86);
                std::printf("%-4s %-6s %-7d %11.1fx\n",
                            workloadName(wl), className(cls), t,
                            r.slowdown);
            }
        }
    }

    // The Section 2 Redis data point.
    {
        MultiIsaBinary bin = compileModule(
            buildWorkload(WorkloadId::REDIS, ProblemClass::A, 1));
        EmulationResult armEmu =
            emulate(bin, IsaId::Aether64, x86, arm);
        EmulationResult x86Emu =
            emulate(bin, IsaId::Xeno64, arm, x86);
        std::printf("\n-- Redis (Section 2; paper: 2.6x / 34x) --\n");
        std::printf("redis ARM-emulated-on-x86: %.1fx\n",
                    armEmu.slowdown);
        std::printf("redis x86-emulated-on-ARM: %.1fx\n",
                    x86Emu.slowdown);
    }
    return 0;
}
