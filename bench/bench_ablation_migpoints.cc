/**
 * @file
 * Ablation: migration-point frequency vs overhead trade-off.
 *
 * Section 5.2.1: "More migration points means a lower migration
 * response time, but higher overhead due to more frequent migration
 * request checks." This harness sweeps the planner's gap target on CG
 * and reports, for each resulting binary: static points, executed
 * checks, max/mean gap (response-time proxy), and runtime overhead vs
 * the uninstrumented binary.
 */

#include "common.hh"
#include "core/migprofile.hh"

using namespace xisa;
using namespace xisa::bench;

int
main()
{
    banner("Ablation", "migration-point frequency vs check overhead "
                       "(Section 5.2.1 trade-off)");
    Module mod = buildWorkload(WorkloadId::CG, ProblemClass::A, 1);
    NodeSpec spec = makeXenoServer();

    CompileOptions plain;
    plain.boundaryMigPoints = false;
    double base =
        runSingleNode(compileModule(mod, plain), spec).makespanSeconds;

    std::printf("\n%-12s %8s %10s %12s %12s %10s\n", "gap target",
                "points", "checks", "maxGap", "meanGap", "overhead");
    for (uint64_t target : {1000000ull, 100000ull, 20000ull, 4000ull,
                            1000ull}) {
        MigPointPlan plan = planMigrationPoints(mod, target);
        CompileOptions opts;
        opts.loopMigPoints = plan.points;
        double t = runSingleNode(compileModule(mod, opts), spec)
                       .makespanSeconds;
        std::printf("%-12llu %8zu %10llu %12llu %12llu %9.2f%%\n",
                    static_cast<unsigned long long>(target),
                    plan.points.size(),
                    static_cast<unsigned long long>(
                        plan.after.checksExecuted),
                    static_cast<unsigned long long>(plan.after.maxGap),
                    static_cast<unsigned long long>(plan.after.meanGap),
                    (t / base - 1.0) * 100.0);
    }
    std::printf("\nLower gap targets shrink the migration response time "
                "at the cost of more\nfrequent flag checks, exactly the "
                "paper's stated trade-off.\n");
    return 0;
}
