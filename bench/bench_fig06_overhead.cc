/**
 * @file
 * Figures 6-9: execution-time overhead of inserting migration points
 * ("wrapper code") for CG and IS on both servers, classes A/B/C and
 * 1/2/4/8 threads -- instrumented vs. uninstrumented binaries. The
 * paper reports mostly <5%, occasionally negative (cache effects);
 * our I-cache model reproduces both behaviours.
 */

#include "common.hh"

using namespace xisa;
using namespace xisa::bench;

int
main()
{
    banner("Figures 6-9", "migration-point wrapper-code overhead (%)");
    for (WorkloadId wl : {WorkloadId::CG, WorkloadId::IS}) {
        for (IsaId isa : {IsaId::Aether64, IsaId::Xeno64}) {
            NodeSpec spec = isa == IsaId::Aether64 ? makeAetherServer()
                                                   : makeXenoServer();
            std::printf("\n-- %s on %s --\n", workloadName(wl),
                        spec.name.c_str());
            std::printf("%-6s %-7s %14s %14s %9s\n", "class", "threads",
                        "base(s)", "instrumented(s)", "overhead");
            for (ProblemClass cls : classSweep()) {
                for (int t : threadSweep()) {
                    Module mod = buildWorkload(wl, cls, t);
                    CompileOptions plain;
                    plain.boundaryMigPoints = false;
                    MultiIsaBinary base = compileModule(mod, plain);
                    MultiIsaBinary inst = compileModule(mod);
                    double tBase =
                        runSingleNode(base, spec).makespanSeconds;
                    double tInst =
                        runSingleNode(inst, spec).makespanSeconds;
                    double overhead = (tInst / tBase - 1.0) * 100.0;
                    std::printf("%-6s %-7d %14.6f %14.6f %8.2f%%\n",
                                className(cls), t, tBase, tInst,
                                overhead);
                }
            }
        }
    }
    return 0;
}
