/**
 * @file
 * Figures 6-9: execution-time overhead of inserting migration points
 * ("wrapper code") for CG and IS on both servers, classes A/B/C and
 * 1/2/4/8 threads -- instrumented vs. uninstrumented binaries. The
 * paper reports mostly <5%, occasionally negative (cache effects);
 * our I-cache model reproduces both behaviours.
 *
 * Doubles as the perf-smoke workload: every (workload, server, class,
 * threads) cell is an independent simulation, so the cells run through
 * the parallel sweep driver and the harness records wall time and
 * simulated-MIPS to --json / --sweep-json for the CI regression gate.
 * Stdout is byte-identical to the sequential harness (ordered merge)
 * and is golden-checked.
 */

#include <chrono>
#include <map>
#include <memory>
#include <tuple>

#include "common.hh"
#include "machine/interp_threaded.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

struct Cell {
    WorkloadId wl;
    IsaId isa;
    ProblemClass cls;
    int threads;
};

struct CellResult {
    double tBase = 0;       ///< simulated seconds, uninstrumented
    double tInst = 0;       ///< simulated seconds, instrumented
    uint64_t instrs = 0;    ///< simulated instructions, both runs
    double hostSeconds = 0; ///< wall time of this cell on this host
};

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
writeJsonHeader(std::FILE *f, const char *bench, bool quick,
                int requestedThreads, size_t configs,
                double wallSeconds)
{
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"sweep_threads\": %d,\n"
                 "  \"configs\": %zu,\n"
                 "  \"wall_seconds\": %.6f,\n",
                 bench, quick ? "quick" : "full", requestedThreads,
                 configs, wallSeconds);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseCommonArgs(
        argc, argv, kOptObs | kOptQuick | kOptPerfJson | kOptConfig);
    const std::string &jsonPath = opts.perfJsonPath;
    const std::string &sweepJsonPath = opts.sweepJsonPath;

    banner("Figures 6-9", "migration-point wrapper-code overhead (%)");

    // Flatten the sweep in print order; the driver may run cells out of
    // order but results come back indexed.
    std::vector<Cell> cells;
    for (WorkloadId wl : {WorkloadId::CG, WorkloadId::IS})
        for (IsaId isa : {IsaId::Aether64, IsaId::Xeno64})
            for (ProblemClass cls : classSweep())
                for (int t : threadSweep())
                    cells.push_back({wl, isa, cls, t});

    // Each unique (workload, class, threads) module is executed by one
    // cell per server ISA: compile it once up front and give each of
    // its two binaries an ExecCache, so the cells sharing a binary also
    // share its predecoded streams and lowered superblocks (DESIGN.md
    // §10) instead of redecoding per cell. Artifacts are deterministic
    // functions of (binary, timing signature), so sharing is invisible
    // to the golden-checked output.
    struct Compiled {
        MultiIsaBinary base;
        MultiIsaBinary inst;
        std::shared_ptr<ExecCache> baseCache =
            std::make_shared<ExecCache>();
        std::shared_ptr<ExecCache> instCache =
            std::make_shared<ExecCache>();
    };
    std::vector<std::unique_ptr<Compiled>> compiled;
    std::vector<size_t> cellBin(cells.size());
    {
        std::map<std::tuple<int, int, int>, size_t> seen;
        for (size_t k = 0; k < cells.size(); ++k) {
            const Cell &c = cells[k];
            auto key = std::make_tuple(static_cast<int>(c.wl),
                                       static_cast<int>(c.cls),
                                       c.threads);
            auto [it, fresh] = seen.emplace(key, compiled.size());
            if (fresh) {
                Module mod = buildWorkload(c.wl, c.cls, c.threads);
                CompileOptions plain;
                plain.boundaryMigPoints = false;
                auto cc = std::make_unique<Compiled>();
                cc->base = compileModule(mod, plain);
                cc->inst = compileModule(mod);
                compiled.push_back(std::move(cc));
            }
            cellBin[k] = it->second;
        }
    }

    const double t0 = wallNow();
    std::vector<CellResult> results =
        runSweep(cells.size(), [&](size_t i) {
            const Cell &c = cells[i];
            const Compiled &bin = *compiled[cellBin[i]];
            CellResult r;
            double c0 = wallNow();
            NodeSpec spec = c.isa == IsaId::Aether64
                                ? makeAetherServer()
                                : makeXenoServer();
            OsRunResult rb = runSingleNode(bin.base, spec, bin.baseCache);
            OsRunResult ri = runSingleNode(bin.inst, spec, bin.instCache);
            r.tBase = rb.makespanSeconds;
            r.tInst = ri.makespanSeconds;
            r.instrs = rb.totalInstrs + ri.totalInstrs;
            r.hostSeconds = wallNow() - c0;
            return r;
        });
    const double wallSeconds = wallNow() - t0;

    // Ordered merge: same stdout as the sequential harness.
    size_t i = 0;
    for (WorkloadId wl : {WorkloadId::CG, WorkloadId::IS}) {
        for (IsaId isa : {IsaId::Aether64, IsaId::Xeno64}) {
            NodeSpec spec = isa == IsaId::Aether64 ? makeAetherServer()
                                                   : makeXenoServer();
            std::printf("\n-- %s on %s --\n", workloadName(wl),
                        spec.name.c_str());
            std::printf("%-6s %-7s %14s %14s %9s\n", "class", "threads",
                        "base(s)", "instrumented(s)", "overhead");
            for (ProblemClass cls : classSweep()) {
                for (int t : threadSweep()) {
                    const CellResult &r = results[i++];
                    double overhead = (r.tInst / r.tBase - 1.0) * 100.0;
                    std::printf("%-6s %-7d %14.6f %14.6f %8.2f%%\n",
                                className(cls), t, r.tBase, r.tInst,
                                overhead);
                }
            }
        }
    }

    uint64_t simInstrs = 0;
    for (const CellResult &r : results)
        simInstrs += r.instrs;

    if (!jsonPath.empty()) {
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        writeJsonHeader(f, "bench_fig06_overhead", quickMode(),
                        sweepThreads(), cells.size(), wallSeconds);
        std::fprintf(f,
                     "  \"simulated_instrs\": %llu,\n"
                     "  \"mips\": %.2f,\n"
                     "  \"rows\": [\n",
                     static_cast<unsigned long long>(simInstrs),
                     simInstrs / wallSeconds / 1e6);
        for (size_t k = 0; k < cells.size(); ++k) {
            const Cell &c = cells[k];
            const CellResult &r = results[k];
            std::fprintf(
                f,
                "    {\"workload\": \"%s\", \"isa\": \"%s\", "
                "\"class\": \"%s\", \"threads\": %d, "
                "\"base_seconds\": %.9f, \"instrumented_seconds\": "
                "%.9f, \"overhead_pct\": %.4f, \"instrs\": %llu}%s\n",
                workloadName(c.wl),
                c.isa == IsaId::Aether64 ? "Aether64" : "Xeno64",
                className(c.cls), c.threads, r.tBase, r.tInst,
                (r.tInst / r.tBase - 1.0) * 100.0,
                static_cast<unsigned long long>(r.instrs),
                k + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "perf json: %s\n", jsonPath.c_str());
    }

    if (!sweepJsonPath.empty()) {
        std::FILE *f = std::fopen(sweepJsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         sweepJsonPath.c_str());
            return 1;
        }
        writeJsonHeader(f, "bench_fig06_overhead", quickMode(),
                        sweepThreads(), cells.size(), wallSeconds);
        std::fprintf(f, "  \"cells\": [\n");
        for (size_t k = 0; k < cells.size(); ++k) {
            const Cell &c = cells[k];
            std::fprintf(
                f,
                "    {\"index\": %zu, \"workload\": \"%s\", "
                "\"isa\": \"%s\", \"class\": \"%s\", \"threads\": %d, "
                "\"host_seconds\": %.6f}%s\n",
                k, workloadName(c.wl),
                c.isa == IsaId::Aether64 ? "Aether64" : "Xeno64",
                className(c.cls), c.threads, results[k].hostSeconds,
                k + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "sweep json: %s\n", sweepJsonPath.c_str());
    }

    // Per-cell registries die with their cell; only the tracer (armed
    // by --trace-out, which also forces a sequential sweep) survives to
    // the output stage.
    obs::StatRegistry empty;
    writeOutputs(opts, empty);
    return 0;
}
