/**
 * @file
 * Figures 3-5: distribution of the number of instructions between
 * migration points for CG, IS, and FT (class A), before ("Pre": points
 * at function boundaries only) and after ("Post": the profile-guided
 * planner adds points at hot loop blocks) insertion.
 *
 * The paper's goal was one migration opportunity per scheduling quantum
 * (~50M instructions at datacenter scale); our kernels are ~1M-20M
 * instructions total, so the target gap is scaled to 20k instructions
 * -- the shape (big decades emptying into small ones) is the result.
 */

#include "common.hh"
#include "core/migprofile.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

void
printHistogram(const char *label, const GapProfile &prof)
{
    std::printf("  %-5s checks=%-8llu maxGap=%-10llu meanGap=%llu\n",
                label,
                static_cast<unsigned long long>(prof.checksExecuted),
                static_cast<unsigned long long>(prof.maxGap),
                static_cast<unsigned long long>(prof.meanGap));
    for (int d = 0; d <= 8; ++d) {
        uint64_t n = prof.hist.bucket(d);
        std::printf("  10^%d %8llu |", d,
                    static_cast<unsigned long long>(n));
        uint64_t bars = n;
        // Log-compress the bar so both tails stay visible.
        int len = 0;
        while (bars > 0 && len < 48) {
            ++len;
            bars /= 2;
        }
        for (int i = 0; i < len; ++i)
            std::printf("#");
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    banner("Figures 3-5",
           "instructions between migration points, pre/post insertion");
    const uint64_t gapTarget = 20000;
    for (WorkloadId wl :
         {WorkloadId::CG, WorkloadId::IS, WorkloadId::FT}) {
        Module mod = buildWorkload(wl, ProblemClass::A, 1);
        MigPointPlan plan = planMigrationPoints(mod, gapTarget);
        std::printf("\n%s (class A), target gap %llu instructions:\n",
                    workloadName(wl),
                    static_cast<unsigned long long>(gapTarget));
        printHistogram("Pre", plan.before);
        printHistogram("Post", plan.after);
        std::printf("  inserted %zu loop migration points in %d "
                    "planner iterations\n",
                    plan.points.size(), plan.iterations);
    }
    return 0;
}
