/**
 * @file
 * Figure 10: stack-transformation latency box plots for CG, EP, FT, IS.
 *
 * Each benchmark is ping-ponged between the two servers so that the
 * transformation runs at many distinct migration points; for each
 * transformation we record both the *measured wall-clock* of our
 * transformation runtime (min/Q1/median/Q3/max, the paper's plot) and
 * the simulated on-node latency from the calibrated cost model (which
 * is what the paper's absolute axis corresponds to: <400us typical on
 * x86, ~2x on ARM).
 */

#include "common.hh"
#include "core/migprofile.hh"
#include "core/stacktransform.hh"
#include "util/stats.hh"

using namespace xisa;
using namespace xisa::bench;

int
main()
{
    banner("Figure 10", "stack transformation latency at migration "
                        "points");
    std::printf("\n%-4s %-9s %7s %42s %30s\n", "wl", "direction",
                "count", "host-us (min/q1/med/q3/max)",
                "sim-us (min/q1/med/q3/max)");
    for (WorkloadId wl : {WorkloadId::CG, WorkloadId::EP, WorkloadId::FT,
                          WorkloadId::IS}) {
        // Compile with profile-guided loop migration points so the
        // transformation runs at many distinct sites (as in the
        // paper's instrumented binaries).
        Module mod = buildWorkload(wl, ProblemClass::A, 1);
        CompileOptions opts;
        opts.loopMigPoints = planMigrationPoints(mod, 20000).points;
        MultiIsaBinary bin = compileModule(std::move(mod), opts);
        OsConfig cfg = OsConfig::dualServer();
        cfg.quantum = 2000;
        ReplicatedOS os(bin, cfg);
        os.load(0);
        os.onQuantum = [](ReplicatedOS &self) {
            if (self.migrations().size() < 400)
                self.migrateProcess(1 - self.threadNode(0));
        };
        os.run();

        std::vector<double> hostUs[2], simUs[2];
        for (const MigrationEvent &ev : os.migrations()) {
            int dir = ev.fromNode == 0 ? 0 : 1; // 0: x86->arm
            hostUs[dir].push_back(ev.transform.hostSeconds * 1e6);
            const NodeSpec spec =
                ev.fromNode == 0 ? makeXenoServer() : makeAetherServer();
            double sim =
                static_cast<double>(StackTransformer::costCycles(
                    ev.transform, spec)) *
                spec.secondsPerCycle() * 1e6;
            simUs[dir].push_back(sim);
        }
        const char *names[2] = {"on-x86", "on-arm"};
        for (int dir = 0; dir < 2; ++dir) {
            BoxSummary host = boxSummary(hostUs[dir]);
            BoxSummary sim = boxSummary(simUs[dir]);
            std::printf("%-4s %-9s %7llu %42s %30s\n", workloadName(wl),
                        names[dir],
                        static_cast<unsigned long long>(host.count),
                        host.str("%.1f").c_str(),
                        sim.str("%.0f").c_str());
        }
    }
    std::printf("\n(The transformation itself is the real runtime in "
                "src/core; host-us is its\n measured latency on this "
                "machine, sim-us the calibrated on-testbed cost.)\n");
    return 0;
}
