/**
 * @file
 * Ablation: checkpoint/restore vs live thread migration.
 *
 * Section 8: "Linux applications can be migrated among homogeneous
 * machines using checkpoint/restore functionality. ... Our work
 * contributes seamless thread migration among heterogeneous-ISA
 * machines without the overheads of checkpoint/restore mechanisms."
 *
 * This harness quantifies that overhead on the same workload:
 *  - C/R: snapshot the whole container (every memory page, eagerly),
 *    ship it over the interconnect, restore; the application is down
 *    for the entire snapshot+transfer+restore window, and C/R cannot
 *    cross ISAs at all;
 *  - live migration: transform one stack, resume immediately, and pull
 *    only the pages actually touched afterwards.
 */

#include "common.hh"

using namespace xisa;
using namespace xisa::bench;

int
main()
{
    banner("Ablation", "checkpoint/restore vs live migration "
                       "(Section 8 contrast)");
    Interconnect net;
    std::printf("\n%-6s %14s %14s %16s %14s %10s\n", "wl",
                "ckpt bytes", "C/R pause(s)", "live pause(s)",
                "pages pulled", "ratio");
    for (WorkloadId wl : {WorkloadId::IS, WorkloadId::CG,
                          WorkloadId::REDIS}) {
        MultiIsaBinary bin =
            compileModule(buildWorkload(wl, ProblemClass::B, 1));
        OsConfig cfg = OsConfig::dualServer();

        // Measure the checkpoint image mid-run.
        size_t ckptBytes = 0;
        {
            ReplicatedOS os(bin, cfg);
            os.load(0);
            os.onQuantum = [&](ReplicatedOS &self) {
                if (ckptBytes == 0 &&
                    self.totalInstrs() > 1000000)
                    ckptBytes = self.checkpoint().size();
            };
            os.run();
        }
        // C/R downtime: serialize + transfer + restore. Processing at
        // ~2 GB/s per side plus the wire time.
        double crPause = net.transferSeconds(ckptBytes) +
                         2.0 * (static_cast<double>(ckptBytes) / 2e9);

        // Live migration on the same workload at the same point.
        double livePause = 0;
        uint64_t pagesPulled = 0;
        {
            ReplicatedOS os(bin, cfg);
            os.load(0);
            // Epoch over the container's registry: reads below are
            // deltas across the run, not lifetime totals.
            obs::ScopedStatEpoch epoch(os.statRegistry());
            bool fired = false;
            os.onQuantum = [&](ReplicatedOS &self) {
                if (!fired && self.totalInstrs() > 1000000) {
                    self.migrateProcess(1);
                    fired = true;
                }
            };
            os.run();
            for (const MigrationEvent &ev : os.migrations())
                livePause += ev.resumeTime - ev.trapTime;
            pagesPulled = static_cast<uint64_t>(
                epoch.delta("dsm.page_transfers"));
        }
        std::printf("%-6s %14zu %14.5f %16.6f %14llu %9.0fx\n",
                    workloadName(wl), ckptBytes, crPause, livePause,
                    static_cast<unsigned long long>(pagesPulled),
                    crPause / livePause);
    }
    std::printf("\nCheckpoint/restore pays for the whole image before "
                "anything runs (and cannot\ncross ISAs); live migration "
                "resumes after one stack transformation and pages\n"
                "in only what is touched.\n");
    return 0;
}
