/**
 * @file
 * Ablation: hDSM page migration vs always-remote access.
 *
 * Section 5.1 justifies a full DSM protocol over the PCIe link's shared
 * memory: "due to the higher latencies for each single operation, we
 * opted for a full DSM protocol ... the hDSM service migrates pages in
 * order to make subsequent memory accesses local". This harness runs
 * the same migrated workload under both strategies and reports the
 * post-migration slowdown of never moving pages.
 */

#include "common.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

double
runWithMode(WorkloadId wl, DsmMode mode)
{
    MultiIsaBinary bin =
        compileModule(buildWorkload(wl, ProblemClass::A, 1));
    OsConfig cfg = OsConfig::dualServer();
    cfg.dsmMode = mode;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    bool fired = false;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (!fired && self.totalInstrs() > 100000) {
            self.migrateProcess(1);
            fired = true;
        }
    };
    OsRunResult res = os.run();
    return res.makespanSeconds;
}

} // namespace

int
main()
{
    banner("Ablation", "hDSM page migration vs always-remote access "
                       "(Section 5.1 design choice)");
    std::printf("\n%-6s %14s %16s %10s\n", "wl", "hDSM(s)",
                "remote-access(s)", "slowdown");
    for (WorkloadId wl : {WorkloadId::CG, WorkloadId::IS, WorkloadId::FT,
                          WorkloadId::SP, WorkloadId::REDIS}) {
        double dsm = runWithMode(wl, DsmMode::MigratePages);
        double remote = runWithMode(wl, DsmMode::RemoteAccess);
        std::printf("%-6s %14.4f %16.4f %9.1fx\n", workloadName(wl),
                    dsm, remote, remote / dsm);
    }
    std::printf("\nPage migration amortizes one transfer per page; "
                "word-granular remote access\npays the interconnect "
                "latency on every post-migration miss.\n");
    return 0;
}
