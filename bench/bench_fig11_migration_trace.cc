/**
 * @file
 * Figure 11: PadMig (Java serialization) vs multi-ISA binary migration.
 *
 * NPB IS (class B, serial) starts on the x86 server and is migrated to
 * the ARM server partway through (the paper moves full_verify()). Two
 * mechanisms are compared:
 *  - PadMig-style: the whole application state is reflected over,
 *    serialized to a neutral format, shipped, and de-serialized -- the
 *    application is paused the entire time;
 *  - native (CrossBound): the stack is transformed in under a
 *    millisecond, execution resumes immediately on ARM, and hDSM moves
 *    pages on demand (the short transfer burst after migration).
 *
 * Output: total execution time for both mechanisms and 100 Hz power and
 * load traces per machine, plus the hDSM page-burst statistics.
 */

#include "common.hh"
#include "serial/padmig.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

struct TraceResult {
    double binSeconds = 0.01;
    double totalSeconds = 0;
    double pauseSeconds = 0;       ///< application stopped for this long
    std::vector<double> power[2];  ///< per node
    std::vector<double> load[2];
    uint64_t pagesMoved = 0;       ///< hDSM transfers during the run
    uint64_t bytesMoved = 0;
};

TraceResult
runScenario(bool padmigStyle, const Options *obsOut = nullptr)
{
    Module mod = buildWorkload(WorkloadId::IS, ProblemClass::B, 1);
    MultiIsaBinary bin = compileModule(std::move(mod));
    OsConfig cfg = OsConfig::dualServer();
    cfg.energyBinSeconds = 2e-4; // finer grid: ms-scale kernels
    ReplicatedOS os(bin, cfg);
    os.load(0);
    if (obsOut)
        obs::Tracer::global().clear(); // trace this scenario only
    obs::ScopedStatEpoch epoch(os.statRegistry());

    TraceResult out;
    bool fired = false;
    os.onQuantum = [&](ReplicatedOS &self) {
        // Migrate at roughly 40% of the run (the paper migrates the
        // verification phase).
        if (fired || self.totalInstrs() < 2600000)
            return;
        fired = true;
        if (padmigStyle) {
            SerializingMigrator mig(&self.net());
            SerializeResult sr = mig.migrate(
                self.dsm(), 0, 1, captureState(bin, self),
                makeXenoServer(), makeAetherServer());
            out.pauseSeconds = sr.totalSeconds();
        }
        self.migrateProcess(1);
    };
    OsRunResult res = os.run();

    double nativePause = 0;
    for (const MigrationEvent &ev : os.migrations())
        nativePause += ev.resumeTime - ev.trapTime;
    if (!padmigStyle)
        out.pauseSeconds = nativePause;

    out.totalSeconds = res.makespanSeconds + out.pauseSeconds;
    double horizon = out.totalSeconds;
    for (int n = 0; n < 2; ++n) {
        double scale = 1.0;
        out.power[n] = os.energy().powerSeries(n, horizon, scale);
        size_t bins = out.power[n].size();
        for (size_t b = 0; b < bins; ++b)
            out.load[n].push_back(os.energy().utilization(n, b) * 100);
        out.binSeconds = os.energy().binSeconds();
    }
    out.pagesMoved =
        static_cast<uint64_t>(epoch.delta("dsm.page_transfers"));
    out.bytesMoved =
        static_cast<uint64_t>(epoch.delta("dsm.bytes_transferred"));
    if (obsOut)
        writeOutputs(*obsOut, os.statRegistry());
    return out;
}

void
printTrace(const char *name, const TraceResult &tr)
{
    std::printf("\n-- %s --\n", name);
    std::printf("total execution time: %.3f s (application paused for "
                "%.4f s during migration)\n",
                tr.totalSeconds, tr.pauseSeconds);
    std::printf("hDSM after migration: %llu pages / %.1f MB moved on "
                "demand\n",
                static_cast<unsigned long long>(tr.pagesMoved),
                static_cast<double>(tr.bytesMoved) / 1e6);
    std::printf("%8s %10s %9s %10s %9s\n", "t(ms)", "x86P(W)",
                "x86L(%)", "armP(W)", "armL(%)");
    size_t bins = std::max(tr.power[0].size(), tr.power[1].size());
    size_t step = std::max<size_t>(1, bins / 24);
    for (size_t b = 0; b < bins; b += step) {
        auto at = [&](const std::vector<double> &v) {
            return b < v.size() ? v[b] : v.empty() ? 0 : v.back();
        };
        std::printf("%8.2f %10.1f %9.1f %10.1f %9.1f\n",
                    b * tr.binSeconds * 1e3, at(tr.power[0]),
                    at(tr.load[0]), at(tr.power[1]), at(tr.load[1]));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options obsOpts = parseCommonArgs(argc, argv, kOptObs | kOptConfig);
    banner("Figure 11", "PadMig (serialization) vs multi-ISA binary "
                        "migration, NPB IS B serial");
    TraceResult padmig = runScenario(true);
    TraceResult native = runScenario(false, &obsOpts);
    printTrace("PadMig-style serialization migration", padmig);
    printTrace("CrossBound native migration", native);
    std::printf("\nSummary: serialization pauses the application %.0fx "
                "longer than stack\ntransformation (%.4f s vs %.6f s); "
                "total time %.3f s vs %.3f s.\n",
                padmig.pauseSeconds / std::max(1e-9,
                                               native.pauseSeconds),
                padmig.pauseSeconds, native.pauseSeconds,
                padmig.totalSeconds, native.totalSeconds);
    return 0;
}
