/**
 * @file
 * Table 1: cost of the unified (cross-ISA aligned) symbol layout.
 *
 * For IS and CG, classes A/B/C, on both servers: execution time and L1
 * instruction-cache miss ratio of the aligned binary relative to the
 * natural per-ISA ("unaligned") layout. The paper reports exec-time
 * ratios within ~1% and correlated L1-I miss-ratio changes; the effect
 * comes from function padding moving code across cache index bits,
 * which our set-associative L1-I model reproduces.
 */

#include "common.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

struct RunStats {
    double seconds = 0;
    double l1iMissRatio = 0;
};

RunStats
measure(const MultiIsaBinary &bin, const NodeSpec &spec)
{
    OsConfig cfg;
    cfg.nodes = {spec};
    ReplicatedOS os(bin, cfg);
    os.load(0);
    OsRunResult res = os.run();
    RunStats out;
    out.seconds = res.makespanSeconds;
    // Aggregate I-cache stats across cores. We reach through the
    // energy meter's spec only for core count; stats come from the
    // interp cores -- exposed via os.interp(0) caches? The cores live
    // in the OS; sum their cache stats through the public interp...
    (void)spec;
    out.l1iMissRatio = os.l1iMissRatio(0);
    return out;
}

} // namespace

int
main()
{
    banner("Table 1", "aligned vs unaligned layout: exec time and "
                      "L1-I miss ratios");
    std::printf("\nValues are aligned/unaligned ratios; >1 means the "
                "aligned layout is slower.\n\n");
    std::printf("%-4s %-6s | %10s %10s | %10s %10s\n", "wl", "class",
                "x86Exec", "x86L1IMiss", "armExec", "armL1IMiss");
    for (WorkloadId wl : {WorkloadId::IS, WorkloadId::CG}) {
        for (ProblemClass cls : classSweep()) {
            Module mod = buildWorkload(wl, cls, 1);
            CompileOptions alignedOpts;
            CompileOptions unalignedOpts;
            unalignedOpts.alignedLayout = false;
            MultiIsaBinary aligned = compileModule(mod, alignedOpts);
            MultiIsaBinary unaligned = compileModule(mod, unalignedOpts);

            double ratio[2][2]; // [isa][exec/miss]
            for (int node = 0; node < 2; ++node) {
                NodeSpec spec = node == 0 ? makeXenoServer()
                                          : makeAetherServer();
                RunStats a = measure(aligned, spec);
                RunStats u = measure(unaligned, spec);
                ratio[node][0] = a.seconds / u.seconds;
                ratio[node][1] = u.l1iMissRatio > 0
                                     ? a.l1iMissRatio / u.l1iMissRatio
                                     : 1.0;
            }
            std::printf("%-4s %-6s | %10.4f %10.4f | %10.4f %10.4f\n",
                        workloadName(wl), className(cls), ratio[0][0],
                        ratio[0][1], ratio[1][0], ratio[1][1]);
        }
    }
    return 0;
}
