/**
 * @file
 * Figure 13: periodic workload scheduling study.
 *
 * Ten job sets of 5 arrival waves (up to 14 jobs each, spaced 60-240 s)
 * compared between the static x86(2) baseline and the dynamic balanced
 * policy on the heterogeneous pair (the paper omits dynamic unbalanced
 * here: it differs from balanced by <1%). Reported: total energy and
 * energy-delay product per set. Paper: avg -30% energy (up to -66% on
 * set-3), avg -11% EDP.
 */

#include "common.hh"
#include "sched/jobsets.hh"
#include "util/stats.hh"

using namespace xisa;
using namespace xisa::bench;

int
main(int argc, char **argv)
{
    Options opts = parseCommonArgs(argc, argv,
                                   kOptObs | kOptQuick | kOptConfig);
    banner("Figure 13", "periodic workload: energy and EDP, static "
                        "x86(2) vs dynamic heterogeneous");
    JobProfileTable table = JobProfileTable::calibrate();
    ClusterSim staticX86(makeX86X86Pool(), table);
    ClusterSim dynamic(makeHeterogeneousPool(true, 1.0), table);

    const int numSets = quickMode() ? 3 : 10;
    std::printf("\n%-6s | %12s %12s %8s | %14s %14s %8s\n", "set",
                "E.static(kJ)", "E.dyn(kJ)", "dE", "EDP.static",
                "EDP.dyn", "dEDP");
    RunningStat dE, dEdp;
    for (int set = 0; set < numSets; ++set) {
        auto jobs = makePeriodicSet(2000 + set);
        ClusterResult s = staticX86.run(jobs, Policy::StaticBalanced);
        ClusterResult d = dynamic.run(jobs, Policy::DynamicBalanced);
        double de = (1.0 - d.totalEnergy / s.totalEnergy) * 100;
        double dedp = (1.0 - d.edp / s.edp) * 100;
        std::printf("set-%-2d | %12.1f %12.1f %7.1f%% | %14.3g %14.3g "
                    "%7.1f%%\n",
                    set, s.totalEnergy / 1e3, d.totalEnergy / 1e3, de,
                    s.edp, d.edp, dedp);
        dE.add(de);
        dEdp.add(dedp);
    }
    std::printf("\nAverages: energy reduction %.1f%% (max %.1f%%), EDP "
                "reduction %.1f%%\n",
                dE.mean(), dE.max(), dEdp.mean());
    std::printf("(Paper: avg 30%% energy reduction, up to 66%%; avg "
                "11%% EDP reduction.)\n");
    writeOutputs(opts, dynamic.statRegistry());
    return 0;
}
