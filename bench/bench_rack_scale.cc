/**
 * @file
 * Rack-scale projection (the paper's closing prediction: "we predict
 * greater benefits can be obtained at the rack or datacenter scale").
 *
 * The cluster simulator already handles N machines, so this harness
 * scales the experiment up: racks mixing x86 and FinFET-ARM servers in
 * different ratios run the periodic workload (scaled to the pool size)
 * under static-balanced vs dynamic-balanced policies. Reported: energy
 * and EDP deltas per mix, relative to an all-x86 rack of the same
 * total machine count.
 */

#include <chrono>
#include <memory>

#include "common.hh"
#include "sched/jobsets.hh"
#include "util/stats.hh"

using namespace xisa;
using namespace xisa::bench;

namespace {

std::vector<Machine>
makeRack(int x86Count, int armCount)
{
    std::vector<Machine> rack;
    for (int i = 0; i < x86Count; ++i)
        rack.push_back({makeXenoServer(), 1.0, 1.0});
    for (int i = 0; i < armCount; ++i)
        rack.push_back({makeAetherServer(), 0.1, 1.0});
    return rack;
}

std::vector<Job>
bigPeriodicSet(uint64_t seed, int machines)
{
    // Scale the wave size with the pool.
    return makePeriodicSet(seed, 5, 7 * machines);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = parseCommonArgs(
        argc, argv, kOptObs | kOptPerfJson | kOptQuick | kOptConfig);
    banner("Rack scale", "heterogeneous mixes vs an all-x86 rack "
                         "(paper Section 1/9 prediction)");
    JobProfileTable table = JobProfileTable::calibrate();
    const int numSets = quickMode() ? 2 : 5;

    struct Mix {
        const char *name;
        int x86, arm;
    } mixes[] = {
        {"8x86+0arm (baseline)", 8, 0},
        {"6x86+2arm", 6, 2},
        {"4x86+4arm", 4, 4},
        {"2x86+6arm", 2, 6},
    };

    std::printf("\n%-22s %14s %14s %10s %10s %8s\n", "rack mix",
                "energy(kJ)", "makespan(s)", "dE", "dEDP", "migr");
    double baseEnergy[8] = {}, baseEdp[8] = {};
    uint64_t schedEvents = 0;
    std::unique_ptr<ClusterSim> lastSim; // outlives the loop: obs dump
    const auto t0 = std::chrono::steady_clock::now();
    for (const Mix &mix : mixes) {
        RunningStat energy, makespan, edp, migr;
        for (int set = 0; set < numSets; ++set) {
            auto jobs = bigPeriodicSet(9000 + set, 8);
            auto sim = std::make_unique<ClusterSim>(
                makeRack(mix.x86, mix.arm), table);
            Policy p = mix.arm == 0 ? Policy::StaticBalanced
                                    : Policy::DynamicBalanced;
            ClusterResult r = sim->run(jobs, p);
            energy.add(r.totalEnergy);
            makespan.add(r.makespan);
            edp.add(r.edp);
            migr.add(r.migrations);
            schedEvents += sim->eventsProcessed();
            lastSim = std::move(sim);
        }
        if (mix.arm == 0) {
            baseEnergy[0] = energy.mean();
            baseEdp[0] = edp.mean();
        }
        double de = baseEnergy[0] > 0
                        ? (1.0 - energy.mean() / baseEnergy[0]) * 100
                        : 0;
        double dedp =
            baseEdp[0] > 0 ? (1.0 - edp.mean() / baseEdp[0]) * 100 : 0;
        std::printf("%-22s %14.1f %14.1f %9.1f%% %9.1f%% %8.0f\n",
                    mix.name, energy.mean() / 1e3, makespan.mean(), de,
                    dedp, migr.mean());
    }
    std::printf("\nLarger heterogeneous shares extend the two-server "
                "energy savings toward the\nrack scale, as the paper "
                "predicts -- until the ARM share starts stretching\n"
                "the makespan enough to erode EDP.\n");
    // Scheduler event throughput, same shape as the rack-kind runner
    // JSON so tools/check_perf.py --min-events-per-sec gates both.
    if (!opts.perfJsonPath.empty()) {
        const double wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::FILE *f = std::fopen(opts.perfJsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                        opts.perfJsonPath.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"bench_rack_scale\",\n"
                     "  \"mode\": \"%s\",\n"
                     "  \"sweep_threads\": %d,\n"
                     "  \"configs\": %zu,\n"
                     "  \"wall_seconds\": %.6f,\n"
                     "  \"sched_events\": %llu,\n"
                     "  \"events_per_sec\": %.2f\n"
                     "}\n",
                     quickMode() ? "quick" : "full", sweepThreads(),
                     sizeof(mixes) / sizeof(mixes[0]) *
                         static_cast<size_t>(numSets),
                     wallSeconds,
                     static_cast<unsigned long long>(schedEvents),
                     wallSeconds > 0 ? schedEvents / wallSeconds : 0.0);
        std::fclose(f);
        std::fprintf(stderr, "perf json: %s\n",
                     opts.perfJsonPath.c_str());
    }
    if (lastSim)
        writeOutputs(opts, lastSim->statRegistry());
    return 0;
}
