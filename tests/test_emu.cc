/**
 * @file
 * DBT baseline tests: translation shapes, helper asymmetry, and the
 * Fig. 1 slowdown structure (x86-on-ARM >> ARM-on-x86; FP-heavy codes
 * suffer most).
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "emu/dbt.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

TEST(Translator, IntegerAluIsNearOneToOneForRiscGuest)
{
    Translator x(IsaId::Aether64, IsaId::Xeno64);
    MachInstr add;
    add.op = MOp::Add;
    EXPECT_EQ(x.translate(add).size(), 1u);
}

TEST(Translator, CiscGuestPaysForFlagMaterialization)
{
    Translator x(IsaId::Xeno64, IsaId::Aether64);
    MachInstr add;
    add.op = MOp::Add;
    EXPECT_GE(x.translate(add).size(), 3u);
}

TEST(Translator, MemoryGoesThroughSoftmmu)
{
    for (auto [g, h] : {std::pair{IsaId::Aether64, IsaId::Xeno64},
                        std::pair{IsaId::Xeno64, IsaId::Aether64}}) {
        Translator x(g, h);
        MachInstr ldr;
        ldr.op = MOp::Ldr;
        EXPECT_GE(x.translate(ldr).size(), 6u) << isaName(g);
    }
}

TEST(Translator, FloatingPointUsesHelpers)
{
    Translator toArm(IsaId::Xeno64, IsaId::Aether64);
    Translator toX86(IsaId::Aether64, IsaId::Xeno64);
    EXPECT_GT(toArm.helperCycles(MOp::FMul), 0u);
    EXPECT_GT(toX86.helperCycles(MOp::FMul), 0u);
    // Softfloat on the weak ARM-like host costs much more.
    EXPECT_GT(toArm.helperCycles(MOp::FMul),
              2 * toX86.helperCycles(MOp::FMul));
    EXPECT_EQ(toArm.helperCycles(MOp::Add), 0u);
}

TEST(Translator, TranslationOfCiscGuestCostsMore)
{
    Translator toArm(IsaId::Xeno64, IsaId::Aether64);
    Translator toX86(IsaId::Aether64, IsaId::Xeno64);
    MachInstr mov;
    mov.op = MOp::MovReg;
    EXPECT_GT(toArm.translateCycles(mov), toX86.translateCycles(mov));
}

TEST(Emulate, SlowdownExceedsOneInBothDirections)
{
    MultiIsaBinary bin = compileModule(
        buildWorkload(WorkloadId::REDIS, ProblemClass::A, 1));
    EmulationResult armOnX86 = emulate(bin, IsaId::Aether64,
                                       makeXenoServer(),
                                       makeAetherServer());
    EmulationResult x86OnArm = emulate(bin, IsaId::Xeno64,
                                       makeAetherServer(),
                                       makeXenoServer());
    EXPECT_GT(armOnX86.slowdown, 1.0);
    EXPECT_GT(x86OnArm.slowdown, 5.0);
    // The paper's asymmetry: emulating x86 on ARM is far worse (2.6x
    // vs 34x for Redis).
    EXPECT_GT(x86OnArm.slowdown, 4 * armOnX86.slowdown);
    EXPECT_GT(armOnX86.guestInstrs, 0u);
    EXPECT_GT(armOnX86.translationCycles, 0u);
}

TEST(Emulate, FpHeavyCodeSuffersMoreThanIntegerCode)
{
    MultiIsaBinary ft = compileModule(
        buildWorkload(WorkloadId::FT, ProblemClass::A, 1));
    MultiIsaBinary is = compileModule(
        buildWorkload(WorkloadId::IS, ProblemClass::A, 1));
    EmulationResult ftSlow = emulate(ft, IsaId::Xeno64,
                                     makeAetherServer(),
                                     makeXenoServer());
    EmulationResult isSlow = emulate(is, IsaId::Xeno64,
                                     makeAetherServer(),
                                     makeXenoServer());
    EXPECT_GT(ftSlow.slowdown, isSlow.slowdown);
}

TEST(Emulate, NativeTimingComesFromRealExecution)
{
    MultiIsaBinary bin = compileModule(
        buildWorkload(WorkloadId::EP, ProblemClass::A, 1));
    EmulationResult r = emulate(bin, IsaId::Aether64, makeXenoServer(),
                                makeAetherServer());
    EXPECT_GT(r.nativeSeconds, 0.0);
    EXPECT_GT(r.emulatedSeconds, r.nativeSeconds);
    EXPECT_GT(r.staticInstrsTranslated, 100u);
}

} // namespace
} // namespace xisa
