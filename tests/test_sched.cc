/**
 * @file
 * Scheduler tests: profile calibration, job-set generation, cluster
 * simulation invariants, and policy behaviour.
 */

#include <gtest/gtest.h>

#include "sched/cluster.hh"
#include "sched/jobsets.hh"
#include "sched/profile.hh"

namespace xisa {
namespace {

/** Real calibration is expensive and exercised by the JobProfile
 *  tests; the ClusterSim tests use the synthetic table. */
const JobProfileTable &
table()
{
    static JobProfileTable t = JobProfileTable::synthetic();
    return t;
}

/** One shared *real* calibration for the JobProfile tests. */
const JobProfileTable &
calibrated()
{
    static JobProfileTable t = JobProfileTable::calibrate();
    return t;
}

TEST(JobProfile, ArmIsSlowerThanX86ForEveryWorkload)
{
    for (WorkloadId wl : allWorkloads()) {
        double x86 = calibrated().baseSeconds(wl, IsaId::Xeno64);
        double arm = calibrated().baseSeconds(wl, IsaId::Aether64);
        EXPECT_GT(x86, 0.0) << workloadName(wl);
        EXPECT_GT(arm, 1.5 * x86) << workloadName(wl);
        EXPECT_LT(arm, 8.0 * x86) << workloadName(wl);
    }
}

TEST(JobProfile, ClassesAndThreadsScaleSensibly)
{
    double a = table().seconds(WorkloadId::CG, ProblemClass::A, 1,
                               IsaId::Xeno64);
    double b = table().seconds(WorkloadId::CG, ProblemClass::B, 1,
                               IsaId::Xeno64);
    double c = table().seconds(WorkloadId::CG, ProblemClass::C, 1,
                               IsaId::Xeno64);
    EXPECT_DOUBLE_EQ(b, 4 * a);
    EXPECT_DOUBLE_EQ(c, 16 * a);
    double t4 = table().seconds(WorkloadId::CG, ProblemClass::A, 4,
                                IsaId::Xeno64);
    EXPECT_LT(t4, a);      // faster than serial
    EXPECT_GT(t4, a / 4);  // but not perfectly
}

TEST(JobSets, SustainedSetsAreDeterministicPerSeed)
{
    auto a = makeSustainedSet(7);
    auto b = makeSustainedSet(7);
    auto c = makeSustainedSet(8);
    ASSERT_EQ(a.size(), 40u);
    EXPECT_EQ(a.size(), b.size());
    bool same = true, diff = false;
    for (size_t i = 0; i < a.size(); ++i) {
        same &= a[i].wl == b[i].wl && a[i].cls == b[i].cls;
        diff |= a[i].wl != c[i].wl || a[i].cls != c[i].cls;
    }
    EXPECT_TRUE(same);
    EXPECT_TRUE(diff);
    for (const Job &j : a) {
        EXPECT_DOUBLE_EQ(j.arrival, 0.0);
        EXPECT_GE(j.threads, 1);
        EXPECT_LE(j.threads, 4);
        if (!supportsThreads(j.wl))
            EXPECT_EQ(j.threads, 1);
    }
}

TEST(JobSets, PeriodicWavesAreSpacedSixtyToTwoForty)
{
    auto jobs = makePeriodicSet(3);
    ASSERT_FALSE(jobs.empty());
    std::vector<double> waves;
    for (const Job &j : jobs)
        if (waves.empty() || j.arrival != waves.back())
            waves.push_back(j.arrival);
    ASSERT_EQ(waves.size(), 5u);
    for (size_t w = 1; w < waves.size(); ++w) {
        double gap = waves[w] - waves[w - 1];
        EXPECT_GE(gap, 60.0);
        EXPECT_LE(gap, 240.0);
    }
}

TEST(ClusterSim, AllJobsCompleteUnderEveryPolicy)
{
    auto jobs = makeSustainedSet(1, 20);
    for (Policy p : {Policy::StaticBalanced, Policy::StaticUnbalanced,
                     Policy::DynamicBalanced,
                     Policy::DynamicUnbalanced}) {
        ClusterSim sim(makeHeterogeneousPool(), table());
        ClusterResult r = sim.run(jobs, p);
        EXPECT_GT(r.makespan, 0.0) << policyName(p);
        EXPECT_GT(r.totalEnergy, 0.0) << policyName(p);
        EXPECT_GT(r.avgTurnaround, 0.0) << policyName(p);
        ASSERT_EQ(r.energyJoules.size(), 2u);
        EXPECT_NEAR(r.energyJoules[0] + r.energyJoules[1],
                    r.totalEnergy, 1e-6);
        EXPECT_NEAR(r.edp, r.totalEnergy * r.makespan, 1e-6);
    }
}

TEST(ClusterSim, StaticPoliciesNeverMigrate)
{
    auto jobs = makeSustainedSet(2, 24);
    ClusterSim sim(makeHeterogeneousPool(), table());
    EXPECT_EQ(sim.run(jobs, Policy::StaticBalanced).migrations, 0);
    EXPECT_EQ(sim.run(jobs, Policy::StaticUnbalanced).migrations, 0);
}

TEST(ClusterSim, DynamicPolicyMigratesOnPeriodicLoad)
{
    auto jobs = makePeriodicSet(5);
    ClusterSim sim(makeHeterogeneousPool(), table());
    ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
    EXPECT_GT(r.makespan, 0.0);
}

TEST(ClusterSim, FinfetProjectionCutsArmEnergy)
{
    auto jobs = makeSustainedSet(3, 20);
    ClusterSim projected(makeHeterogeneousPool(true), table());
    ClusterSim measured(makeHeterogeneousPool(false), table());
    ClusterResult a = projected.run(jobs, Policy::StaticBalanced);
    ClusterResult b = measured.run(jobs, Policy::StaticBalanced);
    EXPECT_LT(a.energyJoules[1], 0.75 * b.energyJoules[1]);
    EXPECT_NEAR(a.energyJoules[0], b.energyJoules[0],
                0.01 * b.energyJoules[0]);
}

TEST(ClusterSim, HomogeneousPoolBalancesEvenly)
{
    auto jobs = makeSustainedSet(4, 30);
    ClusterSim sim(makeX86X86Pool(), table());
    ClusterResult r = sim.run(jobs, Policy::StaticBalanced);
    // Two identical machines: energies within 40% of each other.
    double ratio = r.energyJoules[0] / r.energyJoules[1];
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.7);
}

} // namespace
} // namespace xisa
