/**
 * @file
 * Scheduler tests: profile calibration, job-set generation, cluster
 * simulation invariants, and policy behaviour.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "machine/node.hh"
#include "sched/cluster.hh"
#include "sched/jobsets.hh"
#include "sched/profile.hh"
#include "sched/topology.hh"

namespace xisa {
namespace {

/** Real calibration is expensive and exercised by the JobProfile
 *  tests; the ClusterSim tests use the synthetic table. */
const JobProfileTable &
table()
{
    static JobProfileTable t = JobProfileTable::synthetic();
    return t;
}

/** One shared *real* calibration for the JobProfile tests. */
const JobProfileTable &
calibrated()
{
    static JobProfileTable t = JobProfileTable::calibrate();
    return t;
}

TEST(JobProfile, ArmIsSlowerThanX86ForEveryWorkload)
{
    for (WorkloadId wl : allWorkloads()) {
        double x86 = calibrated().baseSeconds(wl, IsaId::Xeno64);
        double arm = calibrated().baseSeconds(wl, IsaId::Aether64);
        EXPECT_GT(x86, 0.0) << workloadName(wl);
        EXPECT_GT(arm, 1.5 * x86) << workloadName(wl);
        EXPECT_LT(arm, 8.0 * x86) << workloadName(wl);
    }
}

TEST(JobProfile, ClassesAndThreadsScaleSensibly)
{
    double a = table().seconds(WorkloadId::CG, ProblemClass::A, 1,
                               IsaId::Xeno64);
    double b = table().seconds(WorkloadId::CG, ProblemClass::B, 1,
                               IsaId::Xeno64);
    double c = table().seconds(WorkloadId::CG, ProblemClass::C, 1,
                               IsaId::Xeno64);
    EXPECT_DOUBLE_EQ(b, 4 * a);
    EXPECT_DOUBLE_EQ(c, 16 * a);
    double t4 = table().seconds(WorkloadId::CG, ProblemClass::A, 4,
                                IsaId::Xeno64);
    EXPECT_LT(t4, a);      // faster than serial
    EXPECT_GT(t4, a / 4);  // but not perfectly
}

TEST(JobSets, SustainedSetsAreDeterministicPerSeed)
{
    auto a = makeSustainedSet(7);
    auto b = makeSustainedSet(7);
    auto c = makeSustainedSet(8);
    ASSERT_EQ(a.size(), 40u);
    EXPECT_EQ(a.size(), b.size());
    bool same = true, diff = false;
    for (size_t i = 0; i < a.size(); ++i) {
        same &= a[i].wl == b[i].wl && a[i].cls == b[i].cls;
        diff |= a[i].wl != c[i].wl || a[i].cls != c[i].cls;
    }
    EXPECT_TRUE(same);
    EXPECT_TRUE(diff);
    for (const Job &j : a) {
        EXPECT_DOUBLE_EQ(j.arrival, 0.0);
        EXPECT_GE(j.threads, 1);
        EXPECT_LE(j.threads, 4);
        if (!supportsThreads(j.wl))
            EXPECT_EQ(j.threads, 1);
    }
}

TEST(JobSets, PeriodicWavesAreSpacedSixtyToTwoForty)
{
    auto jobs = makePeriodicSet(3);
    ASSERT_FALSE(jobs.empty());
    std::vector<double> waves;
    for (const Job &j : jobs)
        if (waves.empty() || j.arrival != waves.back())
            waves.push_back(j.arrival);
    ASSERT_EQ(waves.size(), 5u);
    for (size_t w = 1; w < waves.size(); ++w) {
        double gap = waves[w] - waves[w - 1];
        EXPECT_GE(gap, 60.0);
        EXPECT_LE(gap, 240.0);
    }
}

TEST(ClusterSim, AllJobsCompleteUnderEveryPolicy)
{
    auto jobs = makeSustainedSet(1, 20);
    for (Policy p : {Policy::StaticBalanced, Policy::StaticUnbalanced,
                     Policy::DynamicBalanced,
                     Policy::DynamicUnbalanced}) {
        ClusterSim sim(makeHeterogeneousPool(), table());
        ClusterResult r = sim.run(jobs, p);
        EXPECT_GT(r.makespan, 0.0) << policyName(p);
        EXPECT_GT(r.totalEnergy, 0.0) << policyName(p);
        EXPECT_GT(r.avgTurnaround, 0.0) << policyName(p);
        ASSERT_EQ(r.energyJoules.size(), 2u);
        EXPECT_NEAR(r.energyJoules[0] + r.energyJoules[1],
                    r.totalEnergy, 1e-6);
        EXPECT_NEAR(r.edp, r.totalEnergy * r.makespan, 1e-6);
    }
}

TEST(ClusterSim, StaticPoliciesNeverMigrate)
{
    auto jobs = makeSustainedSet(2, 24);
    ClusterSim sim(makeHeterogeneousPool(), table());
    EXPECT_EQ(sim.run(jobs, Policy::StaticBalanced).migrations, 0);
    EXPECT_EQ(sim.run(jobs, Policy::StaticUnbalanced).migrations, 0);
}

TEST(ClusterSim, DynamicPolicyMigratesOnPeriodicLoad)
{
    auto jobs = makePeriodicSet(5);
    ClusterSim sim(makeHeterogeneousPool(), table());
    ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
    EXPECT_GT(r.makespan, 0.0);
}

TEST(ClusterSim, FinfetProjectionCutsArmEnergy)
{
    auto jobs = makeSustainedSet(3, 20);
    ClusterSim projected(makeHeterogeneousPool(true), table());
    ClusterSim measured(makeHeterogeneousPool(false), table());
    ClusterResult a = projected.run(jobs, Policy::StaticBalanced);
    ClusterResult b = measured.run(jobs, Policy::StaticBalanced);
    EXPECT_LT(a.energyJoules[1], 0.75 * b.energyJoules[1]);
    EXPECT_NEAR(a.energyJoules[0], b.energyJoules[0],
                0.01 * b.energyJoules[0]);
}

TEST(ClusterSim, HomogeneousPoolBalancesEvenly)
{
    auto jobs = makeSustainedSet(4, 30);
    ClusterSim sim(makeX86X86Pool(), table());
    ClusterResult r = sim.run(jobs, Policy::StaticBalanced);
    // Two identical machines: energies within 40% of each other.
    double ratio = r.energyJoules[0] / r.energyJoules[1];
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.7);
}

// --- Scheduler bugfix regressions and event-core contracts ----------

/** An x86 server with the core count and load weight a scenario
 *  needs (the stock pools all share one shape). */
Machine
customX86(int cores, double weight)
{
    Machine m{makeXenoServer(), 1.0, weight};
    m.spec.cores = cores;
    return m;
}

Job
mkJob(int id, int threads, double arrival)
{
    return Job{id, WorkloadId::CG, ProblemClass::C, threads, arrival};
}

/** Regression for the energy accrual bug: a machine whose run set is
 *  empty must draw sleep power even while jobs sit parked in its
 *  queue. The pre-event-core accrual charged active idle whenever the
 *  queue was non-empty, so a machine parked behind a too-wide job
 *  paid full idle for the whole wait. */
TEST(ClusterSim, ParkedQueueDrawsSleepPowerNotActiveIdle)
{
    // A (8 cores, weight 3) takes the wide job plus a second one
    // that queues behind it; the 3-thread job then scores B (weighted
    // load 3 < 11/3) and parks there -- 3 threads never fit B's 2
    // cores, so B's run set stays empty until the first rebalance
    // tick after the wide job drains moves the parked job over
    // (dropping the weighted peak from 3 to 5/3, so the move is
    // taken while A still runs; nothing ever runs on B, and no
    // counter-move back to B passes the strict-improvement test).
    std::vector<Machine> pool{customX86(8, 3.0), customX86(2, 1.0)};
    ClusterSim::Config cfg;
    cfg.sleepFraction = 0.2;
    cfg.rebalancePeriod = 4e-3;
    ClusterSim sim(pool, table(), cfg);
    std::vector<Job> jobs{mkJob(0, 8, 0.0), mkJob(1, 3, 0.0),
                          mkJob(2, 2, 0.0)};
    ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
    ASSERT_EQ(r.energyJoules.size(), 2u);
    EXPECT_GT(r.makespan, cfg.rebalancePeriod);
    EXPECT_EQ(r.migrations, 0); // the parked job moves queue-to-queue
    // B never ran anything, so every second of the makespan is
    // empty-running time -- most of it with the queue occupied. The
    // fixed accrual charges exactly sleep power throughout; the old
    // rule charged full idle (5x here) over the parked interval.
    double idleB = pool[1].spec.idleWatts;
    EXPECT_NEAR(r.energyJoules[1],
                cfg.sleepFraction * idleB * r.makespan,
                1e-9 * idleB * r.makespan);
}

/** Regression for dropped back-to-back failures: a crash aimed at a
 *  machine that is already down defers to its reboot instant instead
 *  of disappearing, and the deferral is counted. */
TEST(ClusterSim, CrashOnDownMachineDefersToReboot)
{
    std::vector<Machine> pool{customX86(8, 1.0)};
    ClusterSim::Config cfg;
    // Down 2-12 ms; the 5 ms crash finds the machine dark and lands
    // at the reboot instead: down again 12-22 ms.
    cfg.crashes = {{2e-3, 0, 10e-3}, {5e-3, 0, 10e-3}};
    cfg.checkpointPeriod = 1e-3;
    ClusterSim sim(pool, table(), cfg);
    std::vector<Job> jobs{mkJob(0, 4, 0.0)};
    ClusterResult r = sim.run(jobs, Policy::StaticBalanced);
    EXPECT_EQ(r.crashes, 2);
    auto snap = sim.statRegistry().snapshot();
    EXPECT_DOUBLE_EQ(snap.at("xfault.crashes"), 2.0);
    EXPECT_DOUBLE_EQ(snap.at("xfault.crashes_deferred"), 1.0);
    // The job only finishes after the second outage clears.
    EXPECT_GT(r.makespan, 22e-3);
}

/** The rebalance move budget scales with the pool, and exhausting it
 *  is observable: the old fixed 64-move cap silently truncated
 *  fleet-sized rebalances. */
TEST(ClusterSim, RebalanceMoveCapScalesWithPool)
{
    // 2 machines: budget max(64, 16) = 128. B is down when all 300
    // one-thread jobs arrive, so they pile onto A; draining half of
    // them to B after its reboot takes ~150 improving moves -- more
    // than one tick's budget, so the counter must fire.
    {
        std::vector<Machine> pool{customX86(8, 1.0),
                                  customX86(8, 1.0)};
        ClusterSim::Config cfg;
        cfg.rebalancePeriod = 2e-3;
        cfg.crashes = {{0.0, 1, 5e-3}};
        ClusterSim sim(pool, table(), cfg);
        std::vector<Job> jobs;
        for (int i = 0; i < 300; ++i)
            jobs.push_back(mkJob(i, 1, 0.0));
        ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
        EXPECT_EQ(r.crashes, 1);
        EXPECT_GT(sim.statRegistry().snapshot().at(
                      "sched.rebalance_moves_capped"),
                  0.0);
    }
    // 20 machines: budget max(64, 160) = 160. The same reboot burst
    // needs ~100 moves -- beyond the old fixed 64, within the scaled
    // budget -- so the rebalance completes in one tick uncapped.
    {
        std::vector<Machine> pool(20, customX86(8, 1.0));
        ClusterSim::Config cfg;
        cfg.rebalancePeriod = 2e-3;
        cfg.crashes = {{0.0, 1, 5e-3}};
        ClusterSim sim(pool, table(), cfg);
        std::vector<Job> jobs;
        for (int i = 0; i < 2000; ++i)
            jobs.push_back(mkJob(i, 1, 0.0));
        ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
        EXPECT_EQ(r.crashes, 1);
        EXPECT_DOUBLE_EQ(sim.statRegistry().snapshot().at(
                             "sched.rebalance_moves_capped"),
                         0.0);
    }
}

/** Phase order at one timestamp: the checkpoint epoch (phase 3) runs
 *  before crash injection (phase 4), so a crash landing exactly on a
 *  checkpoint boundary rolls back zero work. */
TEST(ClusterSim, CheckpointAtCrashInstantLosesNothing)
{
    std::vector<Machine> pool{customX86(8, 1.0)};
    std::vector<Job> jobs{mkJob(0, 4, 0.0)};
    ClusterSim::Config cfg;
    cfg.checkpointPeriod = 2e-3;
    cfg.crashes = {{2e-3, 0, 1e-3}};
    ClusterSim onBoundary(pool, table(), cfg);
    ClusterResult r = onBoundary.run(jobs, Policy::StaticBalanced);
    EXPECT_EQ(r.crashes, 1);
    EXPECT_DOUBLE_EQ(r.lostWorkSeconds, 0.0);
    EXPECT_GT(r.recoveredWorkSeconds, 0.0);
    // Off the boundary, the progress since the last epoch is lost.
    cfg.crashes = {{2.7e-3, 0, 1e-3}};
    ClusterSim offBoundary(pool, table(), cfg);
    ClusterResult r2 = offBoundary.run(jobs, Policy::StaticBalanced);
    EXPECT_GT(r2.lostWorkSeconds, 0.0);
}

/** Phase order at one timestamp: completions (phase 2) run before
 *  crash injection (phase 4), so a job whose completion coincides
 *  with its machine's crash finishes rather than restarting. */
TEST(ClusterSim, CompletionAtCrashInstantWins)
{
    double d = table().seconds(WorkloadId::CG, ProblemClass::C, 2,
                               IsaId::Xeno64);
    std::vector<Machine> pool{customX86(8, 1.0)};
    ClusterSim::Config cfg;
    cfg.crashes = {{d, 0, 3e-3}};
    ClusterSim sim(pool, table(), cfg);
    std::vector<Job> jobs{mkJob(0, 2, 0.0)};
    ClusterResult r = sim.run(jobs, Policy::StaticBalanced);
    EXPECT_EQ(r.crashes, 1);
    EXPECT_TRUE(r.restartCounts.empty());
    EXPECT_DOUBLE_EQ(r.lostWorkSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.makespan, d);
}

// --- Hierarchical topology ------------------------------------------

TEST(Topology, HopsFactorsAndLatencies)
{
    TopologyConfig c;
    c.machinesPerRack = 4;
    c.racksPerPod = 2;
    c.torOversub = 4.0;
    c.aggOversub = 2.0;
    c.rackHopUs = 5.0;
    c.aggHopUs = 20.0;
    c.localityBias = 0.5;
    Topology t(c);
    EXPECT_TRUE(t.enabled());
    EXPECT_EQ(t.rackOf(3), 0);
    EXPECT_EQ(t.rackOf(4), 1);
    EXPECT_EQ(t.podOf(7), 0);
    EXPECT_EQ(t.podOf(8), 1);
    EXPECT_EQ(t.hops(0, 3), 0);
    EXPECT_EQ(t.hops(0, 5), 1);
    EXPECT_EQ(t.hops(0, 9), 2);
    EXPECT_DOUBLE_EQ(t.bandwidthFactor(0, 3), 1.0);
    EXPECT_DOUBLE_EQ(t.bandwidthFactor(0, 5), 4.0);
    EXPECT_DOUBLE_EQ(t.bandwidthFactor(0, 9), 8.0);
    EXPECT_DOUBLE_EQ(t.extraLatencySeconds(0, 3), 0.0);
    EXPECT_DOUBLE_EQ(t.extraLatencySeconds(0, 5), 5e-6);
    EXPECT_DOUBLE_EQ(t.extraLatencySeconds(0, 9), 25e-6);
    EXPECT_DOUBLE_EQ(t.placementPenalty(0, 9), 1.0);
    EXPECT_DOUBLE_EQ(t.placementPenalty(-1, 9), 0.0);
    // Disabled model: every distance zero, every factor exactly 1.
    Topology flat{TopologyConfig{}};
    EXPECT_FALSE(flat.enabled());
    EXPECT_EQ(flat.hops(0, 9), 0);
    EXPECT_DOUBLE_EQ(flat.bandwidthFactor(0, 9), 1.0);
    EXPECT_DOUBLE_EQ(flat.extraLatencySeconds(0, 9), 0.0);
    // Validation: bad ratios and typo'd hierarchies are rejected.
    TopologyConfig bad = c;
    bad.torOversub = 0.5;
    EXPECT_NE(topologyConfigError(bad), nullptr);
    TopologyConfig inert;
    inert.localityBias = 1.0; // knobs without a rack size
    EXPECT_NE(topologyConfigError(inert), nullptr);
    EXPECT_EQ(topologyConfigError(TopologyConfig{}), nullptr);
    EXPECT_EQ(topologyConfigError(c), nullptr);
}

/** With a locality bias, failover restarts prefer the crashed
 *  machine's rack over an equally-loaded lower-index machine. */
TEST(ClusterSim, LocalityBiasSteersFailoverToSameRack)
{
    // Racks {0,1} and {2,3}; one identical job per machine; m3
    // crashes mid-run. Biased placement restarts its job on m2 (same
    // rack, hops 0); unbiased placement takes m0, the first machine
    // of the argmin tie.
    auto runCase = [&](double bias) {
        std::vector<Machine> pool(4, customX86(8, 1.0));
        ClusterSim::Config cfg;
        cfg.topo.machinesPerRack = 2;
        cfg.topo.localityBias = bias;
        cfg.checkpointPeriod = 2e-3;
        cfg.rebalancePeriod = 1e9; // isolate failover placement
        double d = table().seconds(WorkloadId::CG, ProblemClass::C, 1,
                                   IsaId::Xeno64);
        cfg.crashes = {{0.5 * d, 3, 5e-3}};
        ClusterSim sim(pool, table(), cfg);
        std::vector<Job> jobs;
        for (int i = 0; i < 4; ++i)
            jobs.push_back(mkJob(i, 1, 0.0));
        return sim.run(jobs, Policy::DynamicBalanced);
    };
    ClusterResult biased = runCase(5.0);
    EXPECT_EQ(biased.failovers, 1);
    EXPECT_GT(biased.energyJoules[2], biased.energyJoules[0]);
    ClusterResult blind = runCase(0.0);
    EXPECT_EQ(blind.failovers, 1);
    EXPECT_GT(blind.energyJoules[0], blind.energyJoules[2]);
}

/** Cross-rack migration pays the oversubscription product: the same
 *  schedule over a heavily oversubscribed ToR takes strictly longer
 *  than over the flat interconnect. */
TEST(ClusterSim, CrossRackOversubInflatesMigrationCost)
{
    auto runCase = [&](bool rack) {
        std::vector<Machine> pool = makeX86X86Pool();
        ClusterSim::Config cfg;
        cfg.rebalancePeriod = 0.5e-3;
        if (rack) {
            cfg.topo.machinesPerRack = 1; // every pair crosses the ToR
            cfg.topo.torOversub = 50.0;
            cfg.topo.rackHopUs = 100.0;
        }
        ClusterSim sim(pool, table(), cfg);
        return sim.run(makeSustainedSet(9, 40),
                       Policy::DynamicBalanced);
    };
    ClusterResult flat = runCase(false);
    ClusterResult oversub = runCase(true);
    EXPECT_GT(flat.migrations, 0);
    EXPECT_GT(oversub.makespan, flat.makespan);
}

// --- Correlated failure domains -------------------------------------

TEST(Topology, RackAndPodCutsListDomainMembers)
{
    TopologyConfig c;
    c.machinesPerRack = 4;
    c.racksPerPod = 2;
    Topology t(c);
    FaultCut rack1 = t.rackCut(1, 10, 100, 10);
    EXPECT_EQ(rack1.sideA, (std::vector<int>{4, 5, 6, 7}));
    EXPECT_EQ(rack1.periodMsgs, 100u);
    EXPECT_EQ(rack1.lenMsgs, 10u);
    // A trailing partial rack contributes only the machines that exist.
    EXPECT_EQ(t.rackCut(2, 10, 1, 1).sideA, (std::vector<int>{8, 9}));
    EXPECT_EQ(t.podCut(0, 12, 1, 1).sideA,
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(t.podCut(1, 12, 1, 1).sideA,
              (std::vector<int>{8, 9, 10, 11}));
}

/** A ToR outage removes the whole rack from the placement pool at one
 *  instant -- no crashes, no lost work -- and arrivals land on the
 *  surviving rack until the staggered heal readmits the members. */
TEST(ClusterSim, TorOutageIsolatesRackAtomically)
{
    std::vector<Machine> pool(4, customX86(8, 1.0));
    ClusterSim::Config cfg;
    cfg.topo.machinesPerRack = 2;
    cfg.rebalancePeriod = 1e9; // isolate outage-driven placement
    double d = table().seconds(WorkloadId::CG, ProblemClass::C, 1,
                               IsaId::Xeno64);
    DomainOutage out;
    out.kind = DomainKind::Tor;
    out.domain = 1;
    out.time = 0;
    out.healSeconds = 0.25 * d;
    out.staggerSeconds = 0;
    cfg.outages = {out};
    ClusterSim sim(pool, table(), cfg);
    std::vector<Job> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back(mkJob(i, 1, 0.0));
    ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
    EXPECT_EQ(r.isolations, 2);
    EXPECT_EQ(r.crashes, 0) << "isolation is not a crash";
    EXPECT_DOUBLE_EQ(r.lostWorkSeconds, 0.0);
    auto snap = sim.statRegistry().snapshot();
    EXPECT_DOUBLE_EQ(snap.at("xfault.domain_outages"), 1.0);
    EXPECT_DOUBLE_EQ(snap.at("xfault.isolations"), 2.0);
    // All four t=0 jobs landed on the surviving rack {0,1}; the
    // isolated machines only paid idle/sleep power.
    EXPECT_GT(r.energyJoules[0], r.energyJoules[2]);
    EXPECT_GT(r.energyJoules[1], r.energyJoules[3]);
}

/** A PDU outage expands into per-machine crashes whose failovers
 *  avoid the dying rack even against a strong same-rack locality
 *  bias: the rest of the failure domain goes down at the same
 *  instant, so checkpoint-affine placement would be doomed. */
TEST(ClusterSim, PduOutageFailsOverOutsideItsRack)
{
    std::vector<Machine> pool(4, customX86(8, 1.0));
    ClusterSim::Config cfg;
    cfg.topo.machinesPerRack = 2;
    cfg.topo.localityBias = 5.0; // would steer restarts rack-local
    cfg.checkpointPeriod = 2e-3;
    cfg.rebalancePeriod = 1e9;
    double d = table().seconds(WorkloadId::CG, ProblemClass::C, 1,
                               IsaId::Xeno64);
    DomainOutage out;
    out.kind = DomainKind::Pdu;
    out.domain = 1;
    out.time = 0.5 * d;
    out.healSeconds = 5e-3;
    out.staggerSeconds = 1e-3;
    cfg.outages = {out};
    ClusterSim sim(pool, table(), cfg);
    std::vector<Job> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back(mkJob(i, 1, 0.0));
    ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
    EXPECT_EQ(r.crashes, 2);
    EXPECT_EQ(r.failovers, 2);
    EXPECT_EQ(r.isolations, 0);
    // The crash iteration checkpoints before crashPhase runs, so the
    // rolled-back progress is recovered rather than lost.
    EXPECT_GT(r.recoveredWorkSeconds, 0.0);
    // Both failovers landed outside rack 1: machines 0 and 1 each
    // finish their own job plus a restarted one, so each burns more
    // energy than either briefly-crashed rack-1 machine.
    EXPECT_GT(r.energyJoules[0], r.energyJoules[2]);
    EXPECT_GT(r.energyJoules[1], r.energyJoules[3]);
    EXPECT_GT(r.makespan, 0.5 * d);

    // The seeded jitter stream makes the whole schedule replayable:
    // an identical sim produces bit-identical results.
    ClusterSim again(pool, table(), cfg);
    std::vector<Job> jobs2;
    for (int i = 0; i < 4; ++i)
        jobs2.push_back(mkJob(i, 1, 0.0));
    ClusterResult r2 = again.run(jobs2, Policy::DynamicBalanced);
    EXPECT_EQ(r.makespan, r2.makespan);
    EXPECT_EQ(r.totalEnergy, r2.totalEnergy);
    EXPECT_EQ(r.energyJoules, r2.energyJoules);
}

/** Outage expansion runs identically under the event heap and the
 *  stepping oracle: isolation edges, PDU crash legs and staggered
 *  rejoins are bit-identical across drivers. */
TEST(ClusterSim, OutagesMatchSteppingOracle)
{
    auto runCase = [&](bool slow) {
        if (slow)
            setenv("XISA_SLOW_SCHED", "1", 1);
        else
            unsetenv("XISA_SLOW_SCHED");
        std::vector<Machine> pool(4, customX86(8, 1.0));
        ClusterSim::Config cfg;
        cfg.topo.machinesPerRack = 2;
        cfg.checkpointPeriod = 1e-3;
        cfg.rebalancePeriod = 2e-3;
        DomainOutage tor;
        tor.kind = DomainKind::Tor;
        tor.domain = 0;
        tor.time = 1e-3;
        tor.healSeconds = 3e-3;
        tor.staggerSeconds = 0.5e-3;
        DomainOutage pdu;
        pdu.kind = DomainKind::Pdu;
        pdu.domain = 1;
        pdu.time = 2e-3;
        pdu.healSeconds = 2e-3;
        pdu.staggerSeconds = 0.5e-3;
        cfg.outages = {tor, pdu};
        ClusterSim sim(pool, table(), cfg);
        ClusterResult r = sim.run(makeSustainedSet(5, 16),
                                  Policy::DynamicBalanced);
        unsetenv("XISA_SLOW_SCHED");
        return r;
    };
    ClusterResult ev = runCase(false);
    ClusterResult slow = runCase(true);
    EXPECT_EQ(ev.makespan, slow.makespan);
    EXPECT_EQ(ev.totalEnergy, slow.totalEnergy);
    EXPECT_EQ(ev.energyJoules, slow.energyJoules);
    EXPECT_EQ(ev.isolations, slow.isolations);
    EXPECT_EQ(ev.crashes, slow.crashes);
    EXPECT_EQ(ev.failovers, slow.failovers);
    EXPECT_EQ(ev.migrations, slow.migrations);
    EXPECT_GT(ev.isolations, 0);
    EXPECT_GT(ev.crashes, 0);
}

// --- Driver equivalence: event heap vs stepping oracle --------------

struct SweepOutcome {
    ClusterResult r;
    std::map<std::string, double> stats;
};

/** One seeded scenario under either driver. XISA_SLOW_SCHED is
 *  sampled at ClusterSim construction, so toggling it around the
 *  constructor selects the pre-heap stepping loop. */
SweepOutcome
runSweepCase(bool slowOracle, uint64_t seed, Policy p, bool withTopo,
             bool weighted)
{
    if (slowOracle)
        setenv("XISA_SLOW_SCHED", "1", 1);
    else
        unsetenv("XISA_SLOW_SCHED");
    std::vector<Machine> pool;
    for (int i = 0; i < 6; ++i) {
        if (i % 3 == 2)
            pool.push_back(Machine{makeAetherServer(), 0.1, 1.0});
        else
            pool.push_back(Machine{makeXenoServer(), 1.0,
                                   weighted ? 2.0 : 1.0});
    }
    ClusterSim::Config cfg;
    cfg.rebalancePeriod = 1e-3;
    cfg.checkpointPeriod = 1e-3;
    cfg.sleepFraction = 0.4;
    // Includes a back-to-back failure (2.5 ms hits a machine that is
    // down until 5 ms) so the deferral path is compared too.
    cfg.crashes = {{1e-3, 1, 4e-3}, {2.5e-3, 1, 2e-3},
                   {3e-3, 4, 3e-3}};
    if (withTopo) {
        cfg.topo.machinesPerRack = 2;
        cfg.topo.racksPerPod = 2;
        cfg.topo.torOversub = 4.0;
        cfg.topo.aggOversub = 2.0;
        cfg.topo.rackHopUs = 5.0;
        cfg.topo.aggHopUs = 20.0;
        cfg.topo.localityBias = 0.5;
    }
    ClusterSim sim(pool, table(), cfg);
    SweepOutcome out;
    out.r = sim.run(makeSustainedSet(seed, 24), p);
    out.stats = sim.statRegistry().snapshot();
    unsetenv("XISA_SLOW_SCHED");
    return out;
}

/** Bit-identical, not approximately equal: both drivers share every
 *  state-mutation helper and differ only in how they find the next
 *  instant, so == on doubles is the contract (DESIGN.md §11). */
void
expectSameOutcome(const SweepOutcome &ev, const SweepOutcome &slow,
                  const std::string &label)
{
    EXPECT_EQ(ev.r.energyJoules, slow.r.energyJoules) << label;
    EXPECT_EQ(ev.r.totalEnergy, slow.r.totalEnergy) << label;
    EXPECT_EQ(ev.r.makespan, slow.r.makespan) << label;
    EXPECT_EQ(ev.r.edp, slow.r.edp) << label;
    EXPECT_EQ(ev.r.migrations, slow.r.migrations) << label;
    EXPECT_EQ(ev.r.avgTurnaround, slow.r.avgTurnaround) << label;
    EXPECT_EQ(ev.r.crashes, slow.r.crashes) << label;
    EXPECT_EQ(ev.r.failovers, slow.r.failovers) << label;
    EXPECT_EQ(ev.r.lostWorkSeconds, slow.r.lostWorkSeconds) << label;
    EXPECT_EQ(ev.r.recoveredWorkSeconds, slow.r.recoveredWorkSeconds)
        << label;
    EXPECT_EQ(ev.r.restartCounts, slow.r.restartCounts) << label;
    EXPECT_EQ(ev.stats, slow.stats) << label;
}

TEST(ClusterSim, EventCoreMatchesSteppingOracleAcrossSeeds)
{
    for (uint64_t seed : {11u, 12u, 13u}) {
        for (Policy p :
             {Policy::StaticBalanced, Policy::StaticUnbalanced,
              Policy::DynamicBalanced, Policy::DynamicUnbalanced}) {
            for (bool topo : {false, true}) {
                for (bool weighted : {false, true}) {
                    SweepOutcome ev =
                        runSweepCase(false, seed, p, topo, weighted);
                    SweepOutcome slow =
                        runSweepCase(true, seed, p, topo, weighted);
                    expectSameOutcome(
                        ev, slow,
                        "seed=" + std::to_string(seed) + " policy=" +
                            policyName(p) +
                            (topo ? " topo" : " flat") +
                            (weighted ? " weighted" : " uniform"));
                }
            }
        }
    }
}

} // namespace
} // namespace xisa
