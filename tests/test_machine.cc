/**
 * @file
 * Machine-model tests: caches, node specs, power model, flags, memory.
 */

#include <gtest/gtest.h>

#include "machine/cache.hh"
#include "machine/interp.hh"
#include "machine/mem.hh"
#include "machine/node.hh"
#include "util/logging.hh"

namespace xisa {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache c({1024, 2, 64, 10});
    EXPECT_EQ(c.access(0x1000), 10u);
    EXPECT_EQ(c.access(0x1000), 0u);
    EXPECT_EQ(c.access(0x1004), 0u); // same line
    EXPECT_EQ(c.access(0x1040), 10u); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.5);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way, 8 sets of 64B lines: addresses 64*8 apart map to set 0.
    Cache c({1024, 2, 64, 10});
    uint64_t a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a);
    c.access(b);
    c.access(a);      // a most recent
    c.access(d);      // evicts b
    EXPECT_EQ(c.access(a), 0u);
    EXPECT_EQ(c.access(b), 10u) << "b must have been evicted";
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c({1024, 2, 64, 10});
    c.access(0x2000);
    c.flush();
    EXPECT_EQ(c.access(0x2000), 10u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({1000, 3, 48, 1}), FatalError);
    EXPECT_THROW(Cache({1024, 0, 64, 1}), FatalError);
}

TEST(Cache, AccessThroughChainsPenalties)
{
    Cache l1({1024, 2, 64, 8});
    Cache l2({4096, 4, 64, 20});
    // Cold: L1 miss + L2 miss + memory.
    EXPECT_EQ(accessThrough(l1, l2, 0x3000, 100), 128u);
    // Warm: L1 hit.
    EXPECT_EQ(accessThrough(l1, l2, 0x3000, 100), 0u);
    l1.flush();
    // L1 miss, L2 hit.
    EXPECT_EQ(accessThrough(l1, l2, 0x3000, 100), 8u);
}

TEST(NodeSpec, PresetsMatchTheTestbedShape)
{
    NodeSpec x86 = makeXenoServer();
    NodeSpec arm = makeAetherServer();
    EXPECT_EQ(x86.isa, IsaId::Xeno64);
    EXPECT_EQ(arm.isa, IsaId::Aether64);
    EXPECT_EQ(x86.cores, 6);  // Xeon E5-1650 v2
    EXPECT_EQ(arm.cores, 8);  // X-Gene 1
    EXPECT_GT(x86.freqGHz, arm.freqGHz);
    // Per-op, per-second throughput: x86 about 3x faster.
    double x86Alu = x86.freqGHz / x86.cost(MOp::Add);
    double armAlu = arm.freqGHz / arm.cost(MOp::Add);
    EXPECT_GT(x86Alu / armAlu, 2.0);
    EXPECT_LT(x86Alu / armAlu, 4.5);
    EXPECT_GT(x86.maxWatts, arm.maxWatts);
}

TEST(NodeSpec, PowerModelInterpolatesAndScales)
{
    NodeSpec s = makeXenoServer();
    EXPECT_DOUBLE_EQ(s.power(0.0), s.idleWatts);
    EXPECT_DOUBLE_EQ(s.power(1.0), s.maxWatts);
    EXPECT_DOUBLE_EQ(s.power(0.5),
                     s.idleWatts + 0.5 * (s.maxWatts - s.idleWatts));
    EXPECT_DOUBLE_EQ(s.power(2.0), s.maxWatts);   // clamped
    EXPECT_DOUBLE_EQ(s.power(-1.0), s.idleWatts); // clamped
    EXPECT_NEAR(s.power(1.0, 0.1), s.maxWatts * 0.1, 1e-12);
}

TEST(Flags, EvalCondMatchesArithmetic)
{
    struct Case {
        int64_t a, b;
    } cases[] = {{0, 0}, {1, 2}, {2, 1}, {-1, 1}, {1, -1},
                 {-5, -7}, {INT64_MIN, INT64_MAX}};
    for (const auto &[a, b] : cases) {
        Flags f;
        f.eq = a == b;
        f.lt = a < b;
        f.ult = static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
        EXPECT_EQ(evalCond(Cond::EQ, f), a == b);
        EXPECT_EQ(evalCond(Cond::NE, f), a != b);
        EXPECT_EQ(evalCond(Cond::LT, f), a < b);
        EXPECT_EQ(evalCond(Cond::LE, f), a <= b);
        EXPECT_EQ(evalCond(Cond::GT, f), a > b);
        EXPECT_EQ(evalCond(Cond::GE, f), a >= b);
        EXPECT_EQ(evalCond(Cond::ULT, f),
                  static_cast<uint64_t>(a) < static_cast<uint64_t>(b));
        EXPECT_EQ(evalCond(Cond::UGE, f),
                  static_cast<uint64_t>(a) >= static_cast<uint64_t>(b));
        EXPECT_TRUE(evalCond(Cond::Always, f));
    }
}

TEST(SimMemory, PagesMaterializeZeroFilledAndDrop)
{
    SimMemory mem;
    EXPECT_FALSE(mem.hasPage(5));
    uint64_t v = 0;
    mem.read(5 * vm::kPageSize + 100, &v, 8);
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(mem.hasPage(5));
    v = 123;
    mem.write(5 * vm::kPageSize + 100, &v, 8);
    uint64_t got = 0;
    mem.read(5 * vm::kPageSize + 100, &got, 8);
    EXPECT_EQ(got, 123u);
    mem.dropPage(5);
    EXPECT_FALSE(mem.hasPage(5));
}

TEST(SimMemory, CrossPageCopyIsSeamless)
{
    SimMemory mem;
    std::vector<uint8_t> data(100);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i);
    uint64_t addr = vm::kPageSize - 50;
    mem.write(addr, data.data(), data.size());
    std::vector<uint8_t> back(100);
    mem.read(addr, back.data(), back.size());
    EXPECT_EQ(data, back);
    EXPECT_EQ(mem.residentPages(), 2u);
}

} // namespace
} // namespace xisa
