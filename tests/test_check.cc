/**
 * @file
 * Invariant-auditor and schedule-perturber tests (DESIGN.md §8), plus
 * the minimized regressions for the bugs the auditor surfaced:
 *
 *  - RetryPolicy backoff arithmetic on long retry storms (the exponent
 *    must be capped before the shift);
 *  - ClusterSim lost-work accounting when a job migrates and the
 *    destination machine later crashes (work must be charged once);
 *  - DsmStats shim drift after checkpoint restore (the snapshot now
 *    carries the protocol counters);
 *  - software-TLB shootdown completeness across multiple ports.
 */

#include <gtest/gtest.h>

#include <climits>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/audit.hh"
#include "check/perturb.hh"
#include "compiler/compile.hh"
#include "dsm/dsm.hh"
#include "dsm/faults.hh"
#include "os/os.hh"
#include "sched/cluster.hh"
#include "sched/jobsets.hh"
#include "sched/profile.hh"
#include "util/bytes.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

constexpr uint64_t kBase = 0x10000000ull;
constexpr uint64_t kPage = kBase / vm::kPageSize;

/** Scoped environment override restoring the prior value on exit. */
struct EnvGuard {
    std::string name;
    bool had;
    std::string old;
    EnvGuard(const char *n, const char *v) : name(n)
    {
        const char *p = std::getenv(n);
        had = p != nullptr;
        if (p)
            old = p;
        ::setenv(n, v, 1);
    }
    ~EnvGuard()
    {
        if (had)
            ::setenv(name.c_str(), old.c_str(), 1);
        else
            ::unsetenv(name.c_str());
    }
};

// --- Satellite 1: backoff arithmetic ---------------------------------

TEST(CheckBackoff, MatchesLegacyDoublingSequenceInRange)
{
    RetryPolicy p; // 5us start, 320us cap
    double legacy = p.backoffUs;
    for (int attempt = 1; attempt <= 24; ++attempt) {
        double want = legacy < p.backoffCapUs ? legacy : p.backoffCapUs;
        EXPECT_DOUBLE_EQ(p.backoffForAttempt(attempt), want)
            << "attempt " << attempt;
        legacy *= 2;
        if (legacy > p.backoffCapUs)
            legacy = p.backoffCapUs;
    }
}

TEST(CheckBackoff, MonotonicAndCappedForHugeAttempts)
{
    RetryPolicy p;
    double prev = 0;
    for (int attempt = 1; attempt <= 70; ++attempt) {
        double b = p.backoffForAttempt(attempt);
        EXPECT_GE(b, prev) << "attempt " << attempt;
        EXPECT_LE(b, p.backoffCapUs);
        prev = b;
    }
    // Beyond 63 doublings a raw shift is undefined behaviour and used
    // to wrap the delay back down; now the exponent saturates.
    EXPECT_DOUBLE_EQ(p.backoffForAttempt(64), p.backoffCapUs);
    EXPECT_DOUBLE_EQ(p.backoffForAttempt(1000), p.backoffCapUs);
    EXPECT_DOUBLE_EQ(p.backoffForAttempt(INT_MAX), p.backoffCapUs);
}

TEST(CheckBackoff, CapBelowFirstBackoffClampsEverything)
{
    RetryPolicy p;
    p.backoffUs = 50.0;
    p.backoffCapUs = 10.0;
    for (int attempt = 1; attempt <= 8; ++attempt)
        EXPECT_DOUBLE_EQ(p.backoffForAttempt(attempt), 10.0);
}

// --- Perturber -------------------------------------------------------

TEST(CheckPerturb, FaultOverlayIsDeterministicInSeed)
{
    FaultConfig base;
    base.dropProb = 0.01;
    FaultConfig a = check::SchedulePerturber::perturbFaults(base, 99);
    FaultConfig b = check::SchedulePerturber::perturbFaults(base, 99);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_DOUBLE_EQ(a.dropProb, b.dropProb);
    EXPECT_DOUBLE_EQ(a.dupProb, b.dupProb);
    EXPECT_DOUBLE_EQ(a.spikeProb, b.spikeProb);
    EXPECT_DOUBLE_EQ(a.spikeMaxUs, b.spikeMaxUs);
    // The overlay adds perturbation on top of the base plan.
    EXPECT_NE(a.seed, base.seed);
    EXPECT_GT(a.dupProb, base.dupProb);
    EXPECT_GT(a.spikeProb, base.spikeProb);
    EXPECT_GE(a.dropProb, base.dropProb);
    FaultConfig c = check::SchedulePerturber::perturbFaults(base, 100);
    EXPECT_NE(a.seed, c.seed);
}

TEST(CheckPerturb, ScriptedScheduleSurvivesTheOverlay)
{
    FaultConfig base;
    base.scriptedDrops = {3, 17};
    base.partitionPeriodMsgs = 100;
    base.partitionLenMsgs = 5;
    FaultConfig out = check::SchedulePerturber::perturbFaults(base, 7);
    EXPECT_EQ(out.scriptedDrops, base.scriptedDrops);
    EXPECT_EQ(out.partitionPeriodMsgs, base.partitionPeriodMsgs);
    EXPECT_EQ(out.partitionLenMsgs, base.partitionLenMsgs);
}

TEST(CheckPerturb, MigrationDeferralIsBounded)
{
    check::SchedulePerturber p(7);
    int streak = 0, maxStreak = 0, defers = 0;
    for (int i = 0; i < 2000; ++i) {
        if (p.deferMigrationTrap()) {
            ++defers;
            ++streak;
            maxStreak = std::max(maxStreak, streak);
        } else {
            streak = 0;
        }
    }
    EXPECT_GT(defers, 0) << "perturber never defers";
    EXPECT_LE(maxStreak, 4) << "a migration can be starved";
}

TEST(CheckPerturb, JitterStaysWithinMagnitude)
{
    check::SchedulePerturber p(21);
    for (int i = 0; i < 1000; ++i) {
        double j = p.jitterSeconds(2.5);
        EXPECT_GE(j, -2.5);
        EXPECT_LE(j, 2.5);
    }
}

// --- Satellite 4: TLB shootdown on the multi-port path ---------------

struct TlbFixture : ::testing::Test {
    Interconnect net;
    DsmSpace dsm{3, &net, {3.5, 2.4, 2.4}};

    void
    writeFrom(int node, uint64_t v)
    {
        dsm.port(node).write(kBase, &v, 8);
    }
    uint64_t
    readFrom(int node)
    {
        uint64_t v = 0;
        dsm.port(node).read(kBase, &v, 8);
        return v;
    }
};

TEST_F(TlbFixture, WriteFaultShootsDownEveryPortsEntries)
{
    writeFrom(0, 1); // node 0 exclusive: read+write entries cached
    readFrom(1);     // downgrade to Shared: 0 and 1 cache read entries
    ASSERT_NE(dsm.port(0).tlbReadBase(kPage), nullptr);
    ASSERT_NE(dsm.port(1).tlbReadBase(kPage), nullptr);

    writeFrom(2, 2); // steal: every other copy invalidated
    EXPECT_EQ(dsm.port(0).tlbReadBase(kPage), nullptr)
        << "node 0 read entry survived the invalidation";
    EXPECT_EQ(dsm.port(0).tlbWriteBase(kPage), nullptr);
    EXPECT_EQ(dsm.port(1).tlbReadBase(kPage), nullptr)
        << "node 1 read entry survived the invalidation";
    EXPECT_EQ(dsm.port(1).tlbWriteBase(kPage), nullptr);
    EXPECT_EQ(dsm.state(2, kPage), PageState::Modified);
    // The stale entries must not serve the old bytes.
    EXPECT_EQ(readFrom(0), 2u);
}

TEST_F(TlbFixture, DowngradeDropsTheWriteEntryButKeepsReads)
{
    writeFrom(0, 7);
    ASSERT_NE(dsm.port(0).tlbWriteBase(kPage), nullptr);
    readFrom(1); // Modified -> Shared downgrade of node 0
    EXPECT_EQ(dsm.port(0).tlbWriteBase(kPage), nullptr)
        << "write right survived the downgrade";
    EXPECT_NE(dsm.port(0).tlbReadBase(kPage), nullptr)
        << "read translation should stay valid across a downgrade";
    EXPECT_EQ(dsm.port(1).tlbWriteBase(kPage), nullptr);
    // A write through the stale fast path would skip the protocol; the
    // next store must fault and re-invalidate node 1.
    writeFrom(0, 9);
    EXPECT_EQ(dsm.state(1, kPage), PageState::Invalid);
    EXPECT_EQ(readFrom(2), 9u);
}

TEST_F(TlbFixture, SnapshotRestoreFlushesEveryPort)
{
    writeFrom(0, 5);
    readFrom(1);
    readFrom(2);
    ASSERT_NE(dsm.port(1).tlbReadBase(kPage), nullptr);
    ASSERT_NE(dsm.port(2).tlbReadBase(kPage), nullptr);

    ByteWriter w;
    dsm.saveState(w);
    ByteReader r(w.out);
    dsm.loadState(r); // in-place rewind
    for (int n = 0; n < 3; ++n) {
        EXPECT_EQ(dsm.port(n).tlbReadBase(kPage), nullptr)
            << "node " << n << " kept a translation across restore";
        EXPECT_EQ(dsm.port(n).tlbWriteBase(kPage), nullptr);
    }
    EXPECT_EQ(readFrom(1), 5u);
}

// --- Satellite 2: crash-during-migration accounting ------------------

TEST(CheckClusterAccounting, MigratedJobLosesOnlyPostMigrationWork)
{
    const JobProfileTable profiles = JobProfileTable::synthetic();
    ClusterSim::Config cc;
    cc.rebalancePeriod = 1.0;
    cc.migrationFixedSeconds = 0.0;
    cc.workingSetBytesPerScale = 0.0;
    cc.checkpointPeriod = 1e6; // no checkpoint tick before the crash
    // Machine 1 is down at t=0, so both jobs land on machine 0; it
    // reboots at 2.2, the t=3.0 rebalance migrates one job over, and
    // the t=3.5 crash kills it 0.5s of progress later.
    cc.crashes = {{0.0, 1, 2.2}, {3.5, 1, 50.0}};
    ClusterSim sim(makeX86X86Pool(), profiles, cc);
    std::vector<Job> jobs = {
        {0, WorkloadId::CG, ProblemClass::C, 1, 0.0},
        {1, WorkloadId::CG, ProblemClass::C, 1, 0.0},
    };
    ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
    ASSERT_EQ(r.migrations, 1);
    EXPECT_EQ(r.crashes, 2);
    EXPECT_EQ(r.failovers, 1);
    ASSERT_TRUE(r.restartCounts.count(0));
    EXPECT_EQ(r.restartCounts.at(0), 1);
    // The migration shipped the job's live state, so only the progress
    // made AFTER it may be lost. The pre-fix accounting rolled the job
    // back to its pre-migration checkpoint fraction and charged the
    // 3.0s of source-machine progress again (~3.5s "lost").
    EXPECT_NEAR(r.lostWorkSeconds, 0.5, 1e-6);
}

// --- Satellite 3: DsmStats shim across checkpoint restore ------------

TEST(CheckDsmStatsRestore, RestoredCountersMatchTheCheckpointedRun)
{
    MultiIsaBinary bin =
        compileModule(buildWorkload(WorkloadId::CG, ProblemClass::A, 1));
    OsConfig cfg = OsConfig::dualServer();
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.migrateProcess(1);
    os.run();
    const DsmStats want = os.dsm().stats();
    ASSERT_GT(want.pagesTransferred, 0u)
        << "migration should have moved pages";
    std::vector<uint8_t> ckpt = os.checkpoint();

    ReplicatedOS fresh(bin, cfg);
    fresh.restore(ckpt);
    const DsmStats got = fresh.dsm().stats();
    EXPECT_EQ(got.readFaults, want.readFaults);
    EXPECT_EQ(got.writeFaults, want.writeFaults);
    EXPECT_EQ(got.invalidations, want.invalidations);
    EXPECT_EQ(got.pagesTransferred, want.pagesTransferred);
    EXPECT_EQ(got.bytesTransferred, want.bytesTransferred);
    EXPECT_EQ(got.extraCycles, want.extraCycles);

    // The shim must agree with the registry-backed counters and the
    // per-node breakdown it aggregates.
    const obs::Counter *rf =
        fresh.statRegistry().findCounter("dsm.read_faults");
    ASSERT_NE(rf, nullptr);
    EXPECT_EQ(rf->value(), want.readFaults);
    uint64_t perNode = 0;
    for (int n = 0; n < 2; ++n) {
        const obs::Counter *c = fresh.statRegistry().findCounter(
            "node" + std::to_string(n) + ".dsm.read_faults");
        ASSERT_NE(c, nullptr);
        perNode += c->value();
    }
    EXPECT_EQ(perNode, want.readFaults);
}

// --- Interp timing model must survive node-table growth --------------

// Regression: Interp used to hold a NodeSpec by reference, and
// ReplicatedOS::NodeRuntime passed a reference to its OWN spec member.
// nodes_ is a vector, so emplacing the second node reallocates and
// moves the first NodeRuntime -- its Interp kept pointing at the freed
// old spec, and the lazy predecode later read per-op costs through the
// dangling reference (heap-use-after-free under ASan; silently stale
// timing otherwise). Interp now owns a copy of the spec. This test
// fails on the pre-fix code under the sanitizer CI jobs.
TEST(CheckInterpSpec, SurvivesNodeTableReallocation)
{
    MultiIsaBinary bin =
        compileModule(buildWorkload(WorkloadId::CG, ProblemClass::A, 1));
    OsConfig cfg = OsConfig::dualServer(); // 2 nodes => one realloc
    ReplicatedOS os(bin, cfg);
    os.load(0);
    OsRunResult st = os.run(); // predecode reads spec_ per-op costs
    EXPECT_EQ(st.exitCode, 0);
    EXPECT_GT(st.totalInstrs, 0u);
}

// --- Auditor: clean runs stay clean ----------------------------------

TEST(CheckAuditor, LossyStormPassesAndCountsChecks)
{
    Interconnect::Config nc;
    nc.faults.seed = 1234;
    nc.faults.dropProb = 0.05;
    nc.faults.dupProb = 0.10;
    nc.faults.spikeProb = 0.10;
    Interconnect net(nc);
    obs::StatRegistry reg;
    net.registerStats(reg, "net");
    DsmSpace dsm(3, &net, {1.0, 1.0, 1.0});
    dsm.registerStats(reg);
    check::InvariantAuditor auditor(dsm, &reg, &net, "net",
                                    {nc.faults.seed, 0});
    auditor.attach();

    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        int node = static_cast<int>(rng.below(3));
        uint64_t addr = kBase + rng.below(16) * vm::kPageSize +
                        rng.below(vm::kPageSize / 8) * 8;
        uint64_t v = rng.next();
        if (rng.below(2) == 0)
            dsm.port(node).write(addr, &v, 8);
        else
            dsm.port(node).read(addr, &v, 8);
        if (rng.below(64) == 0)
            dsm.broadcastWrite64(vm::kVdsoBase, v);
    }
    auditor.deepCheck("storm_end");
    EXPECT_GT(auditor.checksRun(), 2000u);
}

// --- Auditor: planted corruption is caught ---------------------------

namespace {

/** Append the DSM counter section (6 aggregates + 4 per node). */
void
writeCounters(ByteWriter &w, int nodes, uint64_t aggReadFaults = 0)
{
    w.u64(aggReadFaults);
    for (int i = 0; i < 5; ++i)
        w.u64(0);
    for (int n = 0; n < nodes * 4; ++n)
        w.u64(0);
}

check::InvariantAuditor
makeAuditor(DsmSpace &dsm)
{
    return check::InvariantAuditor(dsm, nullptr, nullptr, "", {});
}

} // namespace

TEST(CheckAuditor, FlagsPageResidentWhileDirectorySaysInvalid)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {1.0, 1.0});
    std::vector<uint8_t> page(vm::kPageSize, 0xab);
    ByteWriter w;
    w.u32(2);
    w.u32(1); // node 0 holds the page, legitimately
    w.u64(kPage);
    w.raw(page.data(), page.size());
    w.u32(1); // node 1 also holds bytes -- leaked
    w.u64(kPage);
    w.raw(page.data(), page.size());
    w.u32(1);
    w.u64(kPage);
    w.u8(static_cast<uint8_t>(PageState::Modified));
    w.u8(static_cast<uint8_t>(PageState::Invalid));
    w.u32(0);
    writeCounters(w, 2);
    ByteReader r(w.out);
    dsm.loadState(r);
    check::InvariantAuditor auditor = makeAuditor(dsm);
    EXPECT_THROW(auditor.deepCheck("planted"), PanicError);
}

TEST(CheckAuditor, FlagsValidStateWithNoBackingCopy)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {1.0, 1.0});
    ByteWriter w;
    w.u32(2);
    w.u32(0); // node 0: directory says Modified, but no page bytes
    w.u32(0);
    w.u32(1);
    w.u64(kPage);
    w.u8(static_cast<uint8_t>(PageState::Modified));
    w.u8(static_cast<uint8_t>(PageState::Invalid));
    w.u32(0);
    writeCounters(w, 2);
    ByteReader r(w.out);
    dsm.loadState(r);
    check::InvariantAuditor auditor = makeAuditor(dsm);
    EXPECT_THROW(auditor.deepCheck("planted"), PanicError);
}

TEST(CheckAuditor, FlagsDivergentSharedReplicas)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {1.0, 1.0});
    std::vector<uint8_t> pageA(vm::kPageSize, 0x11);
    std::vector<uint8_t> pageB(vm::kPageSize, 0x22);
    ByteWriter w;
    w.u32(2);
    w.u32(1);
    w.u64(kPage);
    w.raw(pageA.data(), pageA.size());
    w.u32(1);
    w.u64(kPage);
    w.raw(pageB.data(), pageB.size());
    w.u32(1);
    w.u64(kPage);
    w.u8(static_cast<uint8_t>(PageState::Shared));
    w.u8(static_cast<uint8_t>(PageState::Shared));
    w.u32(0);
    writeCounters(w, 2);
    ByteReader r(w.out);
    dsm.loadState(r); // MSI-legal, so the basic checker passes...
    check::InvariantAuditor auditor = makeAuditor(dsm);
    EXPECT_THROW(auditor.deepCheck("planted"), PanicError);
}

TEST(CheckAuditor, FlagsAggregatePerNodeCounterDrift)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {1.0, 1.0});
    std::vector<uint8_t> page(vm::kPageSize, 0x33);
    ByteWriter w;
    w.u32(2);
    w.u32(1);
    w.u64(kPage);
    w.raw(page.data(), page.size());
    w.u32(0);
    w.u32(1);
    w.u64(kPage);
    w.u8(static_cast<uint8_t>(PageState::Modified));
    w.u8(static_cast<uint8_t>(PageState::Invalid));
    w.u32(0);
    writeCounters(w, 2, /*aggReadFaults=*/5); // per-node says 0
    ByteReader r(w.out);
    dsm.loadState(r);
    check::InvariantAuditor auditor = makeAuditor(dsm);
    EXPECT_THROW(auditor.deepCheck("planted"), PanicError);
}

TEST(CheckAuditor, UnfencedHealTripsEpochRegression)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {1.0, 1.0});
    dsm.setEpochFencing(false);
    check::InvariantAuditor auditor = makeAuditor(dsm);
    auditor.attach();
    uint64_t a = 0xA;
    dsm.populate(0, kPage * vm::kPageSize, &a, 8);
    uint64_t got = 0;
    dsm.port(1).read(kPage * vm::kPageSize, &got, 8); // both Shared
    dsm.beginPartition({1});
    uint64_t c = 0xC;
    dsm.port(1).write(kPage * vm::kPageSize, &c, 8); // INVAL deferred
    // With the fence down, the heal replays the stale pre-heal INVAL:
    // the per-peer epoch goes backwards and the auditor must flag it.
    EXPECT_THROW(dsm.healPartition(), PanicError);
}

TEST(CheckAuditor, FencedHealPassesAudit)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {1.0, 1.0});
    check::InvariantAuditor auditor = makeAuditor(dsm);
    auditor.attach();
    uint64_t a = 0xA;
    dsm.populate(0, kPage * vm::kPageSize, &a, 8);
    uint64_t got = 0;
    dsm.port(1).read(kPage * vm::kPageSize, &got, 8);
    dsm.beginPartition({1});
    uint64_t c = 0xC;
    dsm.port(1).write(kPage * vm::kPageSize, &c, 8);
    EXPECT_NO_THROW(dsm.healPartition());
    EXPECT_EQ(dsm.fencedMessages(), 1u);
    auditor.deepCheck("after fenced heal");
}

// --- Auditor: OS integration and golden safety -----------------------

TEST(CheckAuditor, StackRoundTripRunsAndAuditedRunIsIdentical)
{
    MultiIsaBinary bin =
        compileModule(buildWorkload(WorkloadId::CG, ProblemClass::A, 1));
    OsConfig cfg = OsConfig::dualServer();

    ReplicatedOS plain(bin, cfg);
    plain.load(0);
    plain.migrateProcess(1);
    OsRunResult ref = plain.run();
    ASSERT_GE(plain.migrations().size(), 1u);

    EnvGuard audit("XISA_AUDIT", "1");
    ReplicatedOS audited(bin, cfg);
    ASSERT_NE(audited.auditor(), nullptr);
    audited.load(0);
    audited.migrateProcess(1);
    OsRunResult got = audited.run();
    EXPECT_GE(audited.auditor()->roundTripsChecked(), 1u);
    EXPECT_GT(audited.auditor()->checksRun(), 0u);

    // XISA_AUDIT must never change what it observes.
    EXPECT_EQ(got.exitCode, ref.exitCode);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.totalInstrs, ref.totalInstrs);
    EXPECT_DOUBLE_EQ(got.makespanSeconds, ref.makespanSeconds);
    const DsmStats a = audited.dsm().stats();
    const DsmStats b = plain.dsm().stats();
    EXPECT_EQ(a.readFaults, b.readFaults);
    EXPECT_EQ(a.writeFaults, b.writeFaults);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.pagesTransferred, b.pagesTransferred);
    EXPECT_EQ(a.bytesTransferred, b.bytesTransferred);
    EXPECT_EQ(a.extraCycles, b.extraCycles);
    EXPECT_EQ(audited.net().messages(), plain.net().messages());
    EXPECT_EQ(audited.net().bytes(), plain.net().bytes());
}

TEST(CheckAuditor, PerturbedCrashyClusterRunStaysClean)
{
    EnvGuard audit("XISA_AUDIT", "1");
    EnvGuard perturb("XISA_PERTURB", "17");
    const JobProfileTable profiles = JobProfileTable::synthetic();
    ClusterSim::Config cc;
    cc.net.faults.dropProb = 0.02;
    cc.crashes = {{5.0, 0, 10.0}, {20.0, 1, 15.0}};
    ClusterSim sim(makeHeterogeneousPool(), profiles, cc);
    std::vector<Job> jobs = makeSustainedSet(11, 10);
    ClusterResult r = sim.run(jobs, Policy::DynamicBalanced);
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_GE(r.crashes, 1);
}

} // namespace
} // namespace xisa
