/**
 * @file
 * OS-layer tests: energy metering, kernel services (heap, threads,
 * barriers), and container lifecycle details.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "ir/builder.hh"
#include "os/energy.hh"
#include "os/os.hh"
#include "util/logging.hh"

namespace xisa {
namespace {

TEST(EnergyMeter, BinsBusyTimeOnTheGrid)
{
    EnergyMeter meter({makeXenoServer()}, 0.01);
    meter.addBusy(0, 0.005, 0.025); // spans bins 0,1,2
    EXPECT_NEAR(meter.busySeconds(0), 0.02, 1e-12);
    // Bin 1 is fully busy for one core out of six.
    EXPECT_NEAR(meter.utilization(0, 1), 0.01 / (0.01 * 6), 1e-9);
    EXPECT_DOUBLE_EQ(meter.utilization(0, 9), 0.0);
}

TEST(EnergyMeter, EnergyIntegratesIdlePlusActive)
{
    NodeSpec spec = makeXenoServer();
    EnergyMeter meter({spec}, 0.01);
    // No activity: 1 second of pure idle.
    double idle = meter.energyJoules(0, 1.0);
    EXPECT_NEAR(idle, spec.idleWatts * 1.0, spec.idleWatts * 0.02);
    // Saturate all cores for the first half.
    for (int c = 0; c < spec.cores; ++c)
        meter.addBusy(0, 0.0, 0.5);
    double loaded = meter.energyJoules(0, 1.0);
    EXPECT_NEAR(loaded,
                spec.maxWatts * 0.5 + spec.idleWatts * 0.5,
                spec.maxWatts * 0.02);
    // The FinFET projection scales everything.
    EXPECT_NEAR(meter.energyJoules(0, 1.0, 0.1), loaded * 0.1,
                loaded * 0.001);
}

TEST(EnergyMeter, PowerSeriesIsTheFig11Trace)
{
    NodeSpec spec = makeAetherServer();
    EnergyMeter meter({spec}, 0.01);
    meter.addBusy(0, 0.02, 0.03);
    std::vector<double> series = meter.powerSeries(0, 0.05);
    ASSERT_EQ(series.size(), 5u);
    EXPECT_DOUBLE_EQ(series[0], spec.idleWatts);
    EXPECT_GT(series[2], spec.idleWatts);
    EXPECT_DOUBLE_EQ(series[4], spec.idleWatts);
}

TEST(OsServices, MallocReusesFreedBlocks)
{
    ModuleBuilder mb("heap");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId a = f.call(mb.builtin(Builtin::Malloc), {f.constInt(100)});
    f.callVoid(mb.builtin(Builtin::Free), {a});
    ValueId b = f.call(mb.builtin(Builtin::Malloc), {f.constInt(100)});
    // Same block comes back: a == b.
    ValueId same = f.icmp(Cond::EQ, a, b);
    f.ret(same);
    MultiIsaBinary bin = compileModule(mb.finish());
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    EXPECT_EQ(os.run().exitCode, 1);
}

TEST(OsServices, FreeOfWildPointerIsFatal)
{
    ModuleBuilder mb("wild");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.builtin(Builtin::Free), {f.constInt(0x123456)});
    f.ret(f.constInt(0));
    MultiIsaBinary bin = compileModule(mb.finish());
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    EXPECT_THROW(os.run(), FatalError);
}

TEST(OsServices, ExitTerminatesAllThreads)
{
    ModuleBuilder mb("exit");
    FuncBuilder &spin = mb.defineFunc("spin", Type::Void, {Type::I64});
    {
        // Infinite loop: only exit() can end the process.
        uint32_t loop = spin.newBlock();
        spin.br(loop);
        spin.setBlock(loop);
        spin.constInt(0);
        spin.br(loop);
    }
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.builtin(Builtin::ThreadSpawn),
               {f.funcAddr(mb.findFunc("spin")), f.constInt(0)});
    f.callVoid(mb.builtin(Builtin::Exit), {f.constInt(5)});
    f.ret(f.constInt(0));
    MultiIsaBinary bin = compileModule(mb.finish());
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    OsRunResult res = os.run();
    EXPECT_TRUE(res.exitedExplicitly);
    EXPECT_EQ(res.exitCode, 5);
}

TEST(OsServices, NodeIdObservesMigration)
{
    // The program prints node_id() before and after the scheduler
    // migrates it: the paper's "same syscalls, same environment" --
    // but a different kernel underneath.
    ModuleBuilder mb("nodeid");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId before = f.call(mb.builtin(Builtin::NodeId), {});
    f.callVoid(mb.builtin(Builtin::PrintI64), {before});
    // Busy loop long enough to span the migration.
    uint32_t slot = f.declareAlloca(8, 8, "acc");
    ValueId acc = f.allocaAddr(slot);
    f.store(Type::I64, acc, f.constInt(0));
    f.forLoopI(0, 3000, [&](ValueId i) {
        // Explicit migration point in the loop (the role the planner's
        // inserted points play in real binaries).
        f.migPoint();
        f.store(Type::I64, acc, f.add(f.load(Type::I64, acc), i));
    });
    ValueId after = f.call(mb.builtin(Builtin::NodeId), {});
    f.callVoid(mb.builtin(Builtin::PrintI64), {after});
    f.ret(f.load(Type::I64, acc));
    MultiIsaBinary bin = compileModule(mb.finish());
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 500;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    int fired = 0;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (fired++ == 2)
            self.migrateProcess(1);
    };
    OsRunResult res = os.run();
    ASSERT_EQ(res.output.size(), 2u);
    EXPECT_EQ(res.output[0], "0");
    EXPECT_EQ(res.output[1], "1");
    EXPECT_EQ(res.exitCode, 3000ll * 2999 / 2);
}

TEST(OsServices, JoinOnSelfDeadlockPanics)
{
    ModuleBuilder mb("dead");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId self = f.call(mb.builtin(Builtin::ThreadId), {});
    f.callVoid(mb.builtin(Builtin::ThreadJoin), {self});
    f.ret(f.constInt(0));
    MultiIsaBinary bin = compileModule(mb.finish());
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    EXPECT_THROW(os.run(), PanicError);
}

TEST(OsServices, InstructionBudgetGuardsRunaways)
{
    ModuleBuilder mb("spin");
    FuncBuilder &f = mb.defineFunc("main", Type::Void, {});
    uint32_t loop = f.newBlock();
    f.br(loop);
    f.setBlock(loop);
    f.constInt(0);
    f.br(loop);
    MultiIsaBinary bin = compileModule(mb.finish());
    OsConfig cfg = OsConfig::dualServer();
    cfg.maxTotalInstrs = 50000;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    EXPECT_THROW(os.run(), FatalError);
}

TEST(OsServices, UnbalancedCoresTrackBusyTime)
{
    // A serial program should light up exactly one core's meter.
    ModuleBuilder mb("busy");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t slot = f.declareAlloca(8, 8, "acc");
    ValueId acc = f.allocaAddr(slot);
    f.store(Type::I64, acc, f.constInt(0));
    f.forLoopI(0, 20000, [&](ValueId i) {
        f.store(Type::I64, acc, f.add(f.load(Type::I64, acc), i));
    });
    f.ret(f.load(Type::I64, acc));
    MultiIsaBinary bin = compileModule(mb.finish());
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    os.run();
    EXPECT_GT(os.energy().busySeconds(0), 0.0);
    EXPECT_DOUBLE_EQ(os.energy().busySeconds(1), 0.0);
}

} // namespace
} // namespace xisa
