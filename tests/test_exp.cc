/**
 * @file
 * The config-driven experiment platform: the conf parser (grammar,
 * macros, diagnostics, unknown-key tracking), the workload registry
 * (providers, named parameter sets, reference resolution), and the
 * experiment specs (defaults, validation, serialize round-trip).
 */

#include <gtest/gtest.h>

#include "exp/config.hh"
#include "exp/registry.hh"
#include "exp/spec.hh"

using namespace xisa;
using namespace xisa::exp;

namespace {

// --- Config: grammar ------------------------------------------------

TEST(Config, ParsesSectionsKeysAndComments)
{
    Config c = Config::parseString("top = 1  # trailing\n"
                                   "# full-line comment\n"
                                   "[alpha]\n"
                                   "name = hello\n"
                                   "list = a, b , c\n"
                                   "[beta.sub]\n"
                                   "x = 2\n",
                                   "t");
    EXPECT_EQ(c.getInt("", "top", 0), 1);
    EXPECT_EQ(c.getString("alpha", "name", ""), "hello");
    EXPECT_EQ(c.getList("alpha", "list"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(c.hasSection("beta.sub"));
    EXPECT_EQ(c.sectionsWithPrefix("beta."),
              std::vector<std::string>{"beta.sub"});
    EXPECT_EQ(c.getInt("beta.sub", "x", 0), 2);
    EXPECT_NO_THROW(c.requireAllUsed()); // every key was consumed
}

TEST(Config, QuotingAndEscapes)
{
    Config c = Config::parseString(
        "plain = 'kept # verbatim'\n"
        "esc = \"line1\\nline2\\t\\\"q\\\" \\\\\"\n",
        "t");
    EXPECT_EQ(c.getString("", "plain", ""), "kept # verbatim");
    EXPECT_EQ(c.getString("", "esc", ""), "line1\nline2\t\"q\" \\");
}

TEST(Config, MacroExpansion)
{
    Config c = Config::parseString("root = /data\n"
                                   "sub = $(root)/runs\n"
                                   "[s]\n"
                                   "deep = $(sub)/x\n",
                                   "t");
    EXPECT_EQ(c.getString("s", "deep", ""), "/data/runs/x");
}

TEST(Config, MacroCycleFails)
{
    EXPECT_THROW(Config::parseString("a = $(b)\nb = $(a)\nc = $(a)\n",
                                     "t")
                     .getString("", "c", ""),
                 ConfigError);
}

// --- Config: malformed input ----------------------------------------

TEST(Config, MalformedInputsThrowWithLineNumbers)
{
    auto fails = [](const std::string &text, const char *what) {
        try {
            Config::parseString(text, "bad.conf");
            FAIL() << "expected ConfigError for: " << what;
        } catch (const ConfigError &e) {
            EXPECT_NE(std::string(e.what()).find("bad.conf"),
                      std::string::npos)
                << what;
        }
    };
    fails("just a line\n", "no equals sign");
    fails("[unclosed\n", "missing bracket");
    fails("[]\nx = 1\n", "empty section name");
    fails("k e y = 1\n", "space in key");
    fails("q = 'abc\n", "unterminated quote");
    fails("e = \"a\\qb\"\n", "bad escape");
    fails("x = $(nope)\n", "undefined macro");
    fails("x = $(broken\n", "unterminated macro");
    fails("x = 1\nx = 2\n", "duplicate key");
    fails("[s]\na = 1\n[s]\nb = 2\n", "duplicate section");
}

TEST(Config, DuplicateKeyNamesFirstLine)
{
    try {
        Config::parseString("x = 1\ny = 2\nx = 3\n", "d.conf");
        FAIL();
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("d.conf:3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("first at line 1"), std::string::npos)
            << msg;
    }
}

TEST(Config, MissingFileThrows)
{
    EXPECT_THROW(Config::parseFile("/nonexistent/xisa.conf"),
                 ConfigError);
}

// --- Config: typed getters ------------------------------------------

TEST(Config, TypedGettersAndDefaults)
{
    Config c = Config::parseString("i = 0x10\nd = 2.5\nb1 = yes\n"
                                   "b2 = off\n",
                                   "t");
    EXPECT_EQ(c.getInt("", "i", 0), 16); // base-0 integers
    EXPECT_DOUBLE_EQ(c.getDouble("", "d", 0), 2.5);
    EXPECT_TRUE(c.getBool("", "b1", false));
    EXPECT_FALSE(c.getBool("", "b2", true));
    EXPECT_EQ(c.getInt("", "absent", 42), 42);
    EXPECT_EQ(c.getString("nosec", "absent", "d"), "d");
}

TEST(Config, TypedGetterRejectsMalformedValues)
{
    Config c = Config::parseString("i = 3x\nd = nan-ish\nb = maybe\n",
                                   "t");
    EXPECT_THROW(c.getInt("", "i", 0), ConfigError);
    EXPECT_THROW(c.getDouble("", "d", 0), ConfigError);
    EXPECT_THROW(c.getBool("", "b", false), ConfigError);
}

TEST(Config, RequireThrowsOnMissing)
{
    Config c = Config::parseString("x = 1\n", "t");
    EXPECT_THROW(c.requireString("", "missing"), ConfigError);
    EXPECT_THROW(c.requireInt("sec", "missing"), ConfigError);
}

// --- Config: unknown-key diagnostics --------------------------------

TEST(Config, UnknownKeysListedWithLocation)
{
    Config c = Config::parseString("known = 1\n"
                                   "[s]\n"
                                   "typo_key = 2\n",
                                   "u.conf");
    c.getInt("", "known", 0);
    try {
        c.requireAllUsed();
        FAIL() << "expected unknown-key diagnostics";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("s.typo_key"), std::string::npos) << msg;
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    }
}

// --- Registry -------------------------------------------------------

TEST(Registry, GlobalSeededFromWorkloadTable)
{
    WorkloadRegistry &reg = WorkloadRegistry::global();
    EXPECT_EQ(reg.names().size(), workloadTable().size());
    EXPECT_NE(reg.find("cg"), nullptr);
    EXPECT_EQ(reg.find("nope"), nullptr);
    EXPECT_TRUE(reg.require("cg").threadCapable());
    EXPECT_FALSE(reg.require("bzip").threadCapable());
}

TEST(Registry, RequireListsKnownNames)
{
    try {
        WorkloadRegistry::global().require("spx");
        FAIL();
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("cg"), std::string::npos);
    }
}

TEST(Registry, ResolveLayersDefaultsSetsAndOverrides)
{
    WorkloadRegistry reg;
    reg.add(makeTableProvider(workloadDesc(WorkloadId::CG)));
    ParameterSet big;
    big.set("class", "C");
    big.set("nthreads", "8");
    reg.defineParamSet("big", big);

    auto r0 = reg.resolve("cg");
    EXPECT_EQ(r0.params.getString("class", ""), "A");
    EXPECT_EQ(r0.params.getInt("nthreads", 0), 1);

    auto r1 = reg.resolve("cg@big");
    EXPECT_EQ(r1.params.getString("class", ""), "C");
    EXPECT_EQ(r1.params.getInt("nthreads", 0), 8);

    ParameterSet over;
    over.set("nthreads", "2");
    auto r2 = reg.resolve("cg @ big", over);
    EXPECT_EQ(r2.params.getString("class", ""), "C");
    EXPECT_EQ(r2.params.getInt("nthreads", 0), 2);
}

TEST(Registry, ResolveRejectsUnknownSetAndParams)
{
    WorkloadRegistry reg;
    reg.add(makeTableProvider(workloadDesc(WorkloadId::CG)));
    EXPECT_THROW(reg.resolve("cg@nosuch"), ConfigError);
    ParameterSet bad;
    bad.set("klass", "A"); // typo'd parameter name
    EXPECT_THROW(reg.resolve("cg", bad), ConfigError);
}

TEST(Registry, BuildValidatesParameterValues)
{
    WorkloadRegistry reg;
    reg.add(makeTableProvider(workloadDesc(WorkloadId::CG)));
    reg.add(makeTableProvider(workloadDesc(WorkloadId::BZIP)));
    ParameterSet badClass;
    badClass.set("class", "D");
    EXPECT_THROW(reg.build("cg", badClass), ConfigError);
    ParameterSet serialThreads;
    serialThreads.set("nthreads", "4"); // bzip is serial-only
    EXPECT_THROW(reg.build("bzip", serialThreads), ConfigError);
    EXPECT_NO_THROW(reg.build("cg"));
}

TEST(Registry, DuplicateProviderRejected)
{
    WorkloadRegistry reg;
    reg.add(makeTableProvider(workloadDesc(WorkloadId::CG)));
    EXPECT_THROW(
        reg.add(makeTableProvider(workloadDesc(WorkloadId::CG))),
        ConfigError);
}

// --- Spec: defaults and validation ----------------------------------

const char *kMinimalOverhead = "kind = overhead\n"
                               "figure = F\n"
                               "title = T\n"
                               "workloads = cg\n";

TEST(Spec, OverheadDefaults)
{
    Config c = Config::parseString(kMinimalOverhead, "o.conf");
    ExperimentSpec s = parseExperiment(c);
    EXPECT_EQ(s.kind, ExperimentKind::Overhead);
    EXPECT_EQ(s.isas, (std::vector<std::string>{"aether", "xeno"}));
    EXPECT_EQ(s.classes.size(), 3u);
    EXPECT_EQ(s.classesQuick.size(), 1u);
    EXPECT_EQ(s.threads, (std::vector<int>{1, 2, 4, 8}));
    EXPECT_EQ(s.threadsQuick, (std::vector<int>{1, 4}));
    EXPECT_EQ(s.activeThreads(true), (std::vector<int>{1, 4}));
    EXPECT_EQ(s.activeThreads(false), (std::vector<int>{1, 2, 4, 8}));
    // Cluster defaults match ClusterSim::Config's.
    ClusterSim::Config cc = s.cluster.simConfig();
    EXPECT_DOUBLE_EQ(cc.rebalancePeriod, 1.0);
    EXPECT_DOUBLE_EQ(cc.workingSetBytesPerScale, 2.0 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(cc.net.latencyUs, 1.2);
    EXPECT_TRUE(cc.crashes.empty());
}

TEST(Spec, UnknownKeyAnywhereFails)
{
    Config c = Config::parseString(std::string(kMinimalOverhead) +
                                       "[sim]\nrebalance_perood = 2\n",
                                   "o.conf");
    EXPECT_THROW(parseExperiment(c), ConfigError);
}

TEST(Spec, MissingRequiredKeysFail)
{
    Config noTitle =
        Config::parseString("kind = overhead\nfigure = F\n"
                            "workloads = cg\n",
                            "t");
    EXPECT_THROW(parseExperiment(noTitle), ConfigError);
    Config noSeed = Config::parseString(
        "kind = rack\nfigure = F\ntitle = T\nsets = 2\n", "t");
    EXPECT_THROW(parseExperiment(noSeed), ConfigError);
    Config badKind = Config::parseString(
        "kind = sideways\nfigure = F\ntitle = T\n", "t");
    EXPECT_THROW(parseExperiment(badKind), ConfigError);
}

TEST(Spec, CrossReferencesValidated)
{
    auto parse = [](const std::string &extra) {
        Config c = Config::parseString(
            "kind = rack\nfigure = F\ntitle = T\n"
            "sets = 1\nseed_base = 1\n" +
                extra,
            "x.conf");
        return parseExperiment(c);
    };
    // Pool referencing an unknown machine.
    EXPECT_THROW(parse("[pool.a]\nmachines = ghost\n"
                       "policy = static-balanced\nbaseline = true\n"),
                 ConfigError);
    // Machine referencing an unknown node.
    EXPECT_THROW(parse("[machine.m]\nnode = ghost\n"
                       "[pool.a]\nmachines = m\n"
                       "policy = static-balanced\nbaseline = true\n"),
                 ConfigError);
    // Unknown policy name.
    EXPECT_THROW(parse("[machine.m]\nnode = xeno\n"
                       "[pool.a]\nmachines = m\n"
                       "policy = round-robin\nbaseline = true\n"),
                 ConfigError);
    // No baseline pool.
    EXPECT_THROW(parse("[machine.m]\nnode = xeno\n"
                       "[pool.a]\nmachines = m\n"
                       "policy = static-balanced\n"),
                 ConfigError);
    // All valid: machine count expansion works.
    ExperimentSpec s =
        parse("[machine.m]\nnode = xeno\n"
              "[pool.a]\nmachines = m*3\n"
              "policy = static-balanced\nbaseline = true\n");
    EXPECT_EQ(s.cluster.makePool(s.cluster.pools[0]).size(), 3u);
}

TEST(Spec, NodeOverrideInheritsPreset)
{
    Config c = Config::parseString(std::string(kMinimalOverhead) +
                                       "isas = fast_arm\n"
                                       "[node.fast_arm]\n"
                                       "base = aether\n"
                                       "freq_ghz = 3.0\n",
                                   "n.conf");
    ExperimentSpec s = parseExperiment(c);
    NodeSpec n = s.cluster.makeNode("fast_arm");
    NodeSpec preset = makeAetherServer();
    EXPECT_EQ(n.name, "fast_arm");
    EXPECT_DOUBLE_EQ(n.freqGHz, 3.0);            // overridden
    EXPECT_EQ(n.cores, preset.cores);            // inherited
    EXPECT_DOUBLE_EQ(n.idleWatts, preset.idleWatts);
}

TEST(Spec, WorkloadRefsValidatedAgainstRegistry)
{
    Config badRef = Config::parseString("kind = overhead\nfigure = F\n"
                                        "title = T\nworkloads = spx\n",
                                        "t");
    EXPECT_THROW(parseExperiment(badRef), ConfigError);
    Config badSet = Config::parseString(
        "kind = overhead\nfigure = F\n"
        "title = T\nworkloads = cg@nosuch\n",
        "t");
    EXPECT_THROW(parseExperiment(badSet), ConfigError);
    Config good = Config::parseString(
        "kind = overhead\nfigure = F\ntitle = T\n"
        "workloads = cg@big\n"
        "[paramset.big]\nclass = B\n",
        "t");
    ExperimentSpec s = parseExperiment(good);
    auto r = makeRegistry(s).resolve("cg@big");
    EXPECT_EQ(r.params.getString("class", ""), "B");
}

TEST(Spec, CrashPlanParsed)
{
    Config c = Config::parseString(
        "kind = sustained\nfigure = F\ntitle = T\n"
        "sets = 1\nseed_base = 7\n"
        "[machine.m]\nnode = xeno\n"
        "[pool.a]\nmachines = m*2\n"
        "policy = static-balanced\nbaseline = true\n"
        "[crashes]\ndown_seconds = 12\nplan = 0@30, 1@55.5\n",
        "c.conf");
    ExperimentSpec s = parseExperiment(c);
    ClusterSim::Config cc = s.cluster.simConfig();
    ASSERT_EQ(cc.crashes.size(), 2u);
    EXPECT_EQ(cc.crashes[0].machine, 0);
    EXPECT_DOUBLE_EQ(cc.crashes[0].time, 30);
    EXPECT_DOUBLE_EQ(cc.crashes[1].time, 55.5);
    EXPECT_DOUBLE_EQ(cc.crashes[1].downSeconds, 12);
}

// --- Spec: serialize round-trip -------------------------------------

void
expectRoundTrip(const std::string &text, const char *name)
{
    Config c1 = Config::parseString(text, name);
    ExperimentSpec s1 = parseExperiment(c1);
    std::string canon = serializeSpec(s1);
    Config c2 = Config::parseString(canon, "canon");
    ExperimentSpec s2 = parseExperiment(c2);
    EXPECT_EQ(serializeSpec(s2), canon)
        << name << ": canonical form is not a fixed point";
}

TEST(Spec, SerializeRoundTripOverhead)
{
    expectRoundTrip(kMinimalOverhead, "overhead");
}

TEST(Spec, SerializeRoundTripFullCluster)
{
    expectRoundTrip(
        "kind = rack\nfigure = \"Rack (x)\"\ntitle = \"deep, dive\"\n"
        "sets = 3\nsets_quick = 1\nseed_base = 4200\nwaves = 4\n"
        "[node.armn]\nbase = aether\ncores = 16\nfreq_ghz = 3.0\n"
        "[machine.x86]\nnode = xeno\n"
        "[machine.arm]\nnode = armn\npower_scale = 0.1\n"
        "[pool.base]\nmachines = x86*8\npolicy = static-balanced\n"
        "baseline = true\nlabel = \"8x86 (baseline)\"\n"
        "[pool.mix]\nmachines = x86*4, arm*4\n"
        "policy = dynamic-unbalanced\nlabel = 4x4\n"
        "[net]\nlatency_us = 5.0\ngbit_per_sec = 10\n"
        "[sim]\nsleep_fraction = 0.25\n"
        "[faults]\nseed = 9\ndrop_prob = 0.02\n"
        "[crashes]\ndown_seconds = 20\nplan = 1@40, 3@90\n"
        "[footer]\ntext = \"multi\\nline\"\n",
        "full");
}

TEST(Spec, SerializeRoundTripSingleWithParamSets)
{
    expectRoundTrip("kind = single\nfigure = F\ntitle = T\n"
                    "workload = cg@big\nmachines = xeno, aether\n"
                    "[paramset.big]\nclass = B\nnthreads = 4\n"
                    "[os]\nquantum = 2000\ndsm_mode = remote\n",
                    "single");
}

TEST(Spec, SerializeRoundTripServing)
{
    expectRoundTrip(
        "kind = serving\nfigure = \"Serving under SLOs\"\n"
        "title = \"open-loop REDIS\"\nmachines = xeno, aether\n"
        "[traffic]\nseed = 9\nclients = 5000\nrequest_hz = 2.5\n"
        "duration = 1.5\nduration_quick = 0.2\nzipf_skew = 0.9\n"
        "key_space = 8192\nget_fraction = 0.85\nslo_us = 650\n"
        "shards = 4\nplacement = 0, 1, 1, 1\n"
        "migrate_plan = 1@0.4->0, 3@0.6->0\n"
        "[crashes]\ndown_seconds = 25\nplan = 0@0.7\n",
        "serving");
}

TEST(Spec, ServingDefaultsMaterialize)
{
    // Omitting [traffic] keys must materialize the defaults: placement
    // round-robins over the machines and quick duration is an eighth.
    Config c = Config::parseString("kind = serving\nfigure = F\n"
                                   "title = T\nmachines = xeno, "
                                   "aether\n[traffic]\nshards = 5\n",
                                   "serving-defaults");
    ExperimentSpec s = parseExperiment(c);
    ASSERT_EQ(s.traffic.placement.size(), 5u);
    EXPECT_EQ(s.traffic.placement,
              (std::vector<int>{0, 1, 0, 1, 0}));
    EXPECT_EQ(s.traffic.durationQuick, s.traffic.duration / 8.0);
    EXPECT_EQ(s.traffic.seed, 42u);
    EXPECT_TRUE(s.traffic.migratePlan.empty());
}

TEST(Spec, ServingRejectsBadTraffic)
{
    auto expectFail = [](const std::string &body) {
        Config c = Config::parseString(
            "kind = serving\nfigure = F\ntitle = T\n"
            "machines = xeno, aether\n" + body, "serving-bad");
        EXPECT_THROW(parseExperiment(c), ConfigError) << body;
    };
    expectFail("[traffic]\nzipf_skew = 1.0\n");
    expectFail("[traffic]\nget_fraction = 1.5\n");
    expectFail("[traffic]\nshards = 0\n");
    expectFail("[traffic]\nplacement = 0, 1\n"); // size != shards
    expectFail("[traffic]\nplacement = 0, 0, 0, 0, 0, 0, 0, 9\n");
    expectFail("[traffic]\nmigrate_plan = 1@1.5->0\n"); // frac >= 1
    expectFail("[traffic]\nmigrate_plan = 99@0.5->0\n");
    expectFail("[traffic]\nmigrate_plan = nonsense\n");
    expectFail("[crashes]\nplan = 0@40\n"); // serving wants fractions
    expectFail("[crashes]\nplan = 7@0.5\n");
}

// --- Spec: [topology] -----------------------------------------------

TEST(Spec, TopologyParsedAndValidated)
{
    Config c = Config::parseString(
        "kind = rack\nfigure = F\ntitle = T\n"
        "sets = 1\nseed_base = 7\nwaves = 2\n"
        "[machine.m]\nnode = xeno\n"
        "[pool.a]\nmachines = m*4\n"
        "policy = dynamic-balanced\nbaseline = true\n"
        "[topology]\nmachines_per_rack = 2\nracks_per_pod = 2\n"
        "tor_oversub = 4.0\nagg_oversub = 2.0\n"
        "rack_hop_us = 5.0\nagg_hop_us = 20.0\n"
        "locality_bias = 0.5\n",
        "topo.conf");
    ExperimentSpec s = parseExperiment(c);
    ClusterSim::Config cc = s.cluster.simConfig();
    EXPECT_EQ(cc.topo.machinesPerRack, 2);
    EXPECT_EQ(cc.topo.racksPerPod, 2);
    EXPECT_DOUBLE_EQ(cc.topo.torOversub, 4.0);
    EXPECT_DOUBLE_EQ(cc.topo.aggOversub, 2.0);
    EXPECT_DOUBLE_EQ(cc.topo.rackHopUs, 5.0);
    EXPECT_DOUBLE_EQ(cc.topo.aggHopUs, 20.0);
    EXPECT_DOUBLE_EQ(cc.topo.localityBias, 0.5);

    auto expectFail = [](const std::string &topoBody) {
        Config bad = Config::parseString(
            "kind = rack\nfigure = F\ntitle = T\n"
            "sets = 1\nseed_base = 7\nwaves = 2\n"
            "[machine.m]\nnode = xeno\n"
            "[pool.a]\nmachines = m*4\n"
            "policy = dynamic-balanced\nbaseline = true\n"
            "[topology]\n" + topoBody, "topo-bad.conf");
        EXPECT_THROW(parseExperiment(bad), ConfigError) << topoBody;
    };
    expectFail("machines_per_rack = 2\ntor_oversub = 0.5\n");
    expectFail("machines_per_rack = -1\n");
    // Knobs without a rack size: a typo'd hierarchy, not flat.
    expectFail("locality_bias = 0.5\n");
}

// --- Spec: [failures] -----------------------------------------------

TEST(Spec, FailuresParsedAndValidated)
{
    Config c = Config::parseString(
        "kind = serving\nfigure = F\ntitle = T\n"
        "machines = xeno*8\n"
        "[topology]\nmachines_per_rack = 2\nracks_per_pod = 2\n"
        "[traffic]\nshards = 4\n"
        "[failures]\nseed = 99\nshed_deciles = 4\n"
        "plan = tor:1@0.25..0.5, agg:0@0.6..0.9\n",
        "failures.conf");
    ExperimentSpec s = parseExperiment(c);
    EXPECT_EQ(s.failureSeed, 99u);
    EXPECT_EQ(s.shedDeciles, 4);
    ASSERT_EQ(s.failures.size(), 2u);
    EXPECT_EQ(s.failures[0].kind, "tor");
    EXPECT_EQ(s.failures[0].domain, 1);
    EXPECT_DOUBLE_EQ(s.failures[0].at, 0.25);
    EXPECT_DOUBLE_EQ(s.failures[0].heal, 0.5);
    EXPECT_EQ(s.failures[1].kind, "agg");
    EXPECT_EQ(s.failures[1].domain, 0);
    // The NAME*COUNT shorthand expanded to eight nodes.
    EXPECT_EQ(s.singleMachineRefs.size(), 8u);
    EXPECT_EQ(s.singleMachineRefs.front(), "xeno");
}

TEST(Spec, FailuresRejectBadPlans)
{
    auto expectFail = [](const std::string &extra) {
        Config c = Config::parseString(
            "kind = serving\nfigure = F\ntitle = T\n"
            "machines = xeno*8\n"
            "[topology]\nmachines_per_rack = 2\nracks_per_pod = 2\n"
            "[traffic]\nshards = 4\n" + extra, "failures-bad.conf");
        EXPECT_THROW(parseExperiment(c), ConfigError) << extra;
    };
    expectFail("[failures]\nplan = volcano:0@0.2..0.4\n"); // bad kind
    expectFail("[failures]\nplan = tor:9@0.2..0.4\n");   // no rack 9
    expectFail("[failures]\nplan = agg:2@0.2..0.4\n");   // no pod 2
    expectFail("[failures]\nplan = tor:0@0.5..0.4\n");   // heal < at
    expectFail("[failures]\nplan = tor:0@0.2..1.5\n");   // heal > 1
    expectFail("[failures]\nplan = nonsense\n");
    expectFail("[failures]\nseed = 7\n");                // empty plan
    expectFail(
        "[failures]\nshed_deciles = 0\nplan = tor:0@0.1..0.2\n");
    expectFail(
        "[failures]\nshed_deciles = 11\nplan = tor:0@0.1..0.2\n");
}

TEST(Spec, FailuresRequireTopologyAndServingKind)
{
    // Domain indices are meaningless without a [topology].
    Config noTopo = Config::parseString(
        "kind = serving\nfigure = F\ntitle = T\n"
        "machines = xeno*8\n[traffic]\nshards = 4\n"
        "[failures]\nplan = tor:0@0.2..0.4\n",
        "failures-notopo.conf");
    EXPECT_THROW(parseExperiment(noTopo), ConfigError);
    // And only the serving kind consumes the section.
    Config rack = Config::parseString(
        "kind = rack\nfigure = F\ntitle = T\n"
        "sets = 1\nseed_base = 7\nwaves = 2\n"
        "[machine.m]\nnode = xeno\n"
        "[pool.a]\nmachines = m*4\n"
        "policy = dynamic-balanced\nbaseline = true\n"
        "[topology]\nmachines_per_rack = 2\n"
        "[failures]\nplan = tor:0@0.2..0.4\n",
        "failures-rack.conf");
    EXPECT_THROW(parseExperiment(rack), ConfigError);
}

TEST(Spec, SerializeRoundTripFailures)
{
    expectRoundTrip(
        "kind = serving\nfigure = F\ntitle = T\n"
        "machines = xeno*6, aether*2\n"
        "[topology]\nmachines_per_rack = 2\nracks_per_pod = 2\n"
        "[traffic]\nseed = 9\nshards = 4\n"
        "[failures]\nseed = 13\nshed_deciles = 2\n"
        "plan = tor:1@0.25..0.5, pdu:0@0.6..0.9\n",
        "failures-roundtrip");
}

TEST(Spec, SerializeRoundTripTopology)
{
    expectRoundTrip(
        "kind = rack\nfigure = F\ntitle = T\n"
        "sets = 2\nseed_base = 11\nwaves = 3\n"
        "[machine.m]\nnode = xeno\n"
        "[pool.a]\nmachines = m*8\n"
        "policy = dynamic-balanced\nbaseline = true\n"
        "[topology]\nmachines_per_rack = 4\nracks_per_pod = 2\n"
        "tor_oversub = 4.0\nagg_oversub = 2.0\n"
        "rack_hop_us = 5.0\nagg_hop_us = 20.0\n"
        "locality_bias = 0.5\n",
        "topo-roundtrip");
}

} // namespace
