/**
 * @file
 * Randomized whole-stack property test.
 *
 * A seeded generator emits random BIR programs -- random expression
 * trees, loops, conditionals, global/array traffic, alloca pointers
 * passed across calls, bounded recursion -- and every program is run
 * three ways: reference IR interpreter, compiled on each ISA, and
 * compiled with an adversarial ping-pong migration schedule. All four
 * observable outcomes must agree exactly. This is the strongest form of
 * the paper's correctness claim: *any* program the toolchain accepts
 * survives *any* migration schedule.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "compiler/compile.hh"
#include "dsm/dsm.hh"
#include "ir/builder.hh"
#include "ir/interp.hh"
#include "obs/registry.hh"
#include "os/os.hh"
#include "traffic/traffic.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

class FuzzProgram
{
  public:
    explicit FuzzProgram(uint64_t seed) : rng_(seed) {}

    Module
    build()
    {
        mb_ = std::make_unique<ModuleBuilder>("fuzz");
        gInt_ = mb_->addGlobalI64s("garr",
                                   std::vector<int64_t>(64, 3));
        gFlt_ = mb_->addGlobalF64s("farr",
                                   std::vector<double>(32, 0.5));

        // A bounded-recursion helper with per-frame live state.
        FuncBuilder &rec =
            mb_->defineFunc("rec", Type::I64, {Type::I64, Type::I64});
        {
            ValueId n = rec.param(0);
            ValueId acc = rec.param(1);
            uint32_t slot = rec.declareAlloca(16, 8, "frame");
            ValueId local = rec.allocaAddr(slot);
            rec.store(Type::I64, local, rec.mulImm(n, 5));
            ValueId stop = rec.icmp(Cond::LE, n, rec.constInt(0));
            uint32_t baseB = rec.newBlock();
            uint32_t recB = rec.newBlock();
            rec.condBr(stop, baseB, recB);
            rec.setBlock(baseB);
            rec.ret(acc);
            rec.setBlock(recB);
            ValueId next =
                rec.call(mb_->findFunc("rec"),
                         {rec.sub(n, rec.constInt(1)),
                          rec.add(acc, rec.load(Type::I64, local))});
            rec.ret(next);
        }

        // One or two random leaf functions.
        int nLeaves = 1 + static_cast<int>(rng_.below(2));
        for (int l = 0; l < nLeaves; ++l) {
            FuncBuilder &leaf = mb_->defineFunc(
                strfmt("leaf%d", l), Type::I64,
                {Type::I64, Type::I64, Type::Ptr});
            f_ = &leaf;
            ints_ = {leaf.param(0), leaf.param(1)};
            flts_.clear();
            // The pointer parameter targets the caller's alloca.
            ValueId fromCaller = leaf.load(Type::I64, leaf.param(2));
            ints_.push_back(fromCaller);
            emitStatements(3 + rng_.below(5));
            ValueId r = randInt();
            leaf.store(Type::I64, leaf.param(2), r);
            leaf.ret(r);
            leafIds_.push_back(mb_->findFunc(strfmt("leaf%d", l)));
        }

        FuncBuilder &mainFn = mb_->defineFunc("main", Type::I64, {});
        f_ = &mainFn;
        uint32_t bufSlot = mainFn.declareAlloca(32, 8, "buf");
        buf_ = mainFn.allocaAddr(bufSlot);
        mainFn.store(Type::I64, buf_, mainFn.constInt(17));
        ints_ = {mainFn.constInt(static_cast<int64_t>(rng_.next() & 0xffff))};
        flts_ = {mainFn.constFloat(1.25)};

        int64_t trips = 20 + static_cast<int64_t>(rng_.below(60));
        mainFn.forLoopI(0, trips, [&](ValueId i) {
            ints_.push_back(i);
            emitStatements(2 + rng_.below(6));
            // Call something with the alloca pointer.
            uint32_t callee = leafIds_[rng_.below(leafIds_.size())];
            ValueId r = mainFn.call(callee,
                                    {randInt(), randInt(), buf_});
            ints_.push_back(r);
            // Accumulate into the shared array.
            ValueId idx = mainFn.band(i, mainFn.constInt(63));
            ValueId cur = mainFn.loadIdx(Type::I64,
                                         mainFn.globalAddr(gInt_), idx,
                                         8);
            mainFn.storeIdx(Type::I64, mainFn.globalAddr(gInt_), idx,
                            mainFn.add(cur, r), 8);
            trimPools();
        });

        // Bounded recursion through live frames.
        ValueId rsum = mainFn.call(
            mb_->findFunc("rec"),
            {mainFn.constInt(5 + static_cast<int64_t>(rng_.below(12))),
             mainFn.constInt(0)});

        // Fold everything observable and print it.
        uint32_t accSlot = mainFn.declareAlloca(8, 8, "acc");
        ValueId acc = mainFn.allocaAddr(accSlot);
        mainFn.store(Type::I64, acc, rsum);
        mainFn.forLoopI(0, 64, [&](ValueId i) {
            ValueId v = mainFn.loadIdx(Type::I64,
                                       mainFn.globalAddr(gInt_), i, 8);
            mainFn.store(
                Type::I64, acc,
                mainFn.bxor(mainFn.load(Type::I64, acc),
                            mainFn.add(v, mainFn.mulImm(i, 31))));
        });
        mainFn.callVoid(mb_->builtin(Builtin::PrintI64),
                        {mainFn.load(Type::I64, acc)});
        mainFn.callVoid(mb_->builtin(Builtin::PrintI64),
                        {mainFn.load(Type::I64, buf_)});
        mainFn.ret(mainFn.band(mainFn.load(Type::I64, acc),
                               mainFn.constInt(0xffff)));
        return mb_->finish();
    }

  private:
    ValueId
    randInt()
    {
        return ints_[rng_.below(ints_.size())];
    }

    ValueId
    randFlt()
    {
        return flts_[rng_.below(flts_.size())];
    }

    void
    trimPools()
    {
        // Vreg pools grow per loop body; keep the generator bounded.
        if (ints_.size() > 24)
            ints_.resize(24);
        if (flts_.size() > 12)
            flts_.resize(12);
    }

    void
    emitStatements(uint64_t count)
    {
        for (uint64_t s = 0; s < count; ++s) {
            switch (rng_.below(8)) {
              case 0:
                ints_.push_back(f_->add(randInt(), randInt()));
                break;
              case 1:
                ints_.push_back(f_->mul(randInt(), randInt()));
                break;
              case 2:
                ints_.push_back(f_->bxor(randInt(), randInt()));
                break;
              case 3:
                // Division with a guaranteed-nonzero divisor.
                ints_.push_back(f_->udiv(
                    randInt(), f_->bor(randInt(), f_->constInt(1))));
                break;
              case 4:
                ints_.push_back(f_->shl(
                    randInt(), f_->band(randInt(), f_->constInt(31))));
                break;
              case 5: {
                ValueId idx = f_->band(randInt(), f_->constInt(63));
                ints_.push_back(f_->loadIdx(
                    Type::I64, f_->globalAddr(gInt_), idx, 8));
                break;
              }
              case 6: {
                // Random conditional with stores on both arms.
                ValueId c = f_->icmp(
                    static_cast<Cond>(rng_.below(6)), randInt(),
                    randInt());
                ValueId idx = f_->band(randInt(), f_->constInt(31));
                f_->ifThenElse(
                    c,
                    [&] {
                        f_->storeIdx(Type::F64,
                                     f_->globalAddr(gFlt_), idx,
                                     f_->fadd(randFltOrConst(),
                                              f_->constFloat(0.125)),
                                     8);
                    },
                    [&] {
                        f_->storeIdx(Type::F64,
                                     f_->globalAddr(gFlt_), idx,
                                     f_->fmul(randFltOrConst(),
                                              f_->constFloat(0.5)),
                                     8);
                    });
                break;
              }
              case 7: {
                ValueId idx = f_->band(randInt(), f_->constInt(31));
                flts_.push_back(f_->loadIdx(
                    Type::F64, f_->globalAddr(gFlt_), idx, 8));
                break;
              }
            }
        }
    }

    ValueId
    randFlt2()
    {
        return flts_.empty() ? f_->constFloat(2.0) : randFlt();
    }

    ValueId
    randFltOrConst()
    {
        return randFlt2();
    }

    Rng rng_;
    std::unique_ptr<ModuleBuilder> mb_;
    FuncBuilder *f_ = nullptr;
    uint32_t gInt_ = 0, gFlt_ = 0;
    ValueId buf_ = kNoValue;
    std::vector<ValueId> ints_, flts_;
    std::vector<uint32_t> leafIds_;
};

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomProgramsSurviveAnyMigrationSchedule)
{
    Module mod = FuzzProgram(0xf00d + GetParam() * 7919).build();
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();

    // Plain execution on both ISAs.
    MultiIsaBinary bin = compileModule(mod);
    for (int node : {0, 1}) {
        ReplicatedOS os(bin, OsConfig::dualServer());
        os.load(node);
        OsRunResult got = os.run();
        ASSERT_EQ(got.output, ref.output)
            << "seed " << GetParam() << " node " << node;
        ASSERT_EQ(got.exitCode, ref.retVal);
    }

    // Adversarial ping-pong migration.
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 150 + GetParam() * 37;
    ReplicatedOS os(bin, cfg);
    os.load(GetParam() % 2);
    os.onQuantum = [](ReplicatedOS &self) {
        self.migrateProcess(1 - self.threadNode(0));
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.output, ref.output) << "seed " << GetParam();
    EXPECT_EQ(got.exitCode, ref.retVal) << "seed " << GetParam();
    EXPECT_GE(os.migrations().size(), 2u) << "seed " << GetParam();
    os.dsm().checkInvariants();

    // Same adversarial schedule on a degraded fabric: drops force
    // retries, duplicates force idempotent re-application, and the
    // observable outcome must still match the reference exactly.
    OsConfig fcfg = cfg;
    fcfg.net.faults.seed = 0xfa017 + static_cast<uint64_t>(GetParam());
    fcfg.net.faults.dropProb = 0.25;
    fcfg.net.faults.dupProb = 0.15;
    fcfg.net.faults.spikeProb = 0.1;
    ReplicatedOS fos(bin, fcfg);
    fos.load(GetParam() % 2);
    fos.onQuantum = [](ReplicatedOS &self) {
        self.migrateProcess(1 - self.threadNode(0));
    };
    OsRunResult fgot = fos.run();
    EXPECT_EQ(fgot.output, ref.output) << "faulty, seed " << GetParam();
    EXPECT_EQ(fgot.exitCode, ref.retVal) << "faulty, seed " << GetParam();
    fos.dsm().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 24));

/**
 * Fault-image property: a random mix of DSM traffic driven through a
 * lossy, duplicating, partition-prone link must leave the exact same
 * final memory image as the same ops on a perfect link. 200 seeds; the
 * op sequence is generated once per seed so both runs replay it
 * identically.
 */
class FaultImageFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultImageFuzz, FaultyFinalImageMatchesFaultFree)
{
    constexpr uint64_t base = 0x10000000ull;
    constexpr uint64_t words = 512; // spans two pages
    const uint64_t seed = 0xace + static_cast<uint64_t>(GetParam());

    struct Op {
        int node;
        uint64_t addr;
        bool isWrite;
        uint64_t value;
    };
    std::vector<Op> ops;
    Rng gen(seed);
    for (int i = 0; i < 300; ++i) {
        Op op;
        op.node = static_cast<int>(gen.below(3));
        op.addr = base + gen.below(words) * 8;
        op.isWrite = gen.below(2) == 0;
        op.value = gen.next();
        ops.push_back(op);
    }

    auto runOps = [&](DsmSpace &dsm) {
        for (const Op &op : ops) {
            if (op.isWrite) {
                dsm.port(op.node).write(op.addr, &op.value, 8);
            } else {
                uint64_t sink = 0;
                dsm.port(op.node).read(op.addr, &sink, 8);
            }
        }
        dsm.checkInvariants();
    };

    Interconnect cleanNet;
    DsmSpace clean(3, &cleanNet, {3.5, 2.4, 2.4});
    runOps(clean);

    Interconnect::Config fcfg;
    fcfg.faults.seed = seed * 0x9e3779b97f4a7c15ull;
    fcfg.faults.dropProb = 0.2;
    fcfg.faults.dupProb = 0.15;
    fcfg.faults.spikeProb = 0.1;
    fcfg.faults.partitionPeriodMsgs = 32;
    fcfg.faults.partitionLenMsgs = 4;
    Interconnect faultyNet(fcfg);
    DsmSpace faulty(3, &faultyNet, {3.5, 2.4, 2.4});
    runOps(faulty);

    for (uint64_t w = 0; w < words; ++w) {
        uint64_t a = base + w * 8;
        uint64_t vc = 0, vf = 0;
        clean.peek(a, &vc, 8);
        faulty.peek(a, &vf, 8);
        ASSERT_EQ(vf, vc) << "seed " << seed << " word " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultImageFuzz,
                         ::testing::Range(0, 200));

/**
 * Fast-path differential property (DESIGN.md §7, §10): for random
 * programs under an adversarial migration schedule, all three dispatch
 * engines -- the superblock threaded engine (the default), the plain
 * predecoded fast path (XISA_THREADED=0), and the XISA_SLOW_PATH
 * reference -- must agree on every observable: output, exit code,
 * instruction count, simulated makespan, every stat value, and the
 * final memory image. 100 seeds.
 */
class FastSlowFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FastSlowFuzz, FastPathIsObservationallyIdentical)
{
    Module mod = FuzzProgram(0xfa57 + GetParam() * 6151).build();
    MultiIsaBinary bin = compileModule(mod);

    struct Capture {
        OsRunResult res;
        std::map<std::string, double> stats;
        std::map<uint64_t, std::vector<uint8_t>> image;
    };
    auto capture = [&]() {
        OsConfig cfg = OsConfig::dualServer();
        cfg.quantum = 150 + GetParam() * 13;
        ReplicatedOS os(bin, cfg);
        os.load(GetParam() % 2);
        os.onQuantum = [](ReplicatedOS &self) {
            self.migrateProcess(1 - self.threadNode(0));
        };
        Capture c;
        c.res = os.run();
        c.stats = os.statRegistry().snapshot();
        c.image = os.dsm().pageImage();
        return c;
    };

    Capture fast = capture(); // superblock threaded engine (default)
    setenv("XISA_THREADED", "0", 1);
    Capture plain = capture(); // predecoded fast path, no superblocks
    unsetenv("XISA_THREADED");
    setenv("XISA_SLOW_PATH", "1", 1);
    Capture slow = capture();
    unsetenv("XISA_SLOW_PATH");

    auto expectSame = [&](const Capture &a, const Capture &b,
                          const char *leg) {
        ASSERT_EQ(a.res.output, b.res.output)
            << leg << " seed " << GetParam();
        ASSERT_EQ(a.res.exitCode, b.res.exitCode) << leg;
        ASSERT_EQ(a.res.totalInstrs, b.res.totalInstrs) << leg;
        ASSERT_EQ(a.res.makespanSeconds, b.res.makespanSeconds) << leg;
        ASSERT_TRUE(a.image == b.image)
            << leg << " seed " << GetParam()
            << ": final memory images differ";
        ASSERT_EQ(a.stats, b.stats) << leg << " seed " << GetParam();
    };
    expectSame(fast, slow, "threaded-vs-reference");
    expectSame(fast, plain, "threaded-vs-fastpath");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastSlowFuzz, ::testing::Range(0, 100));

// --- Traffic/serving determinism fuzz --------------------------------

/**
 * 50 seeded serving scenarios, each with a seed-derived shape (client
 * count, rate, skew, shard count, placement, a migration, a crash),
 * each run twice: single-threaded and with 4 sweep workers. The stats
 * bytes must match exactly -- the serving layer's determinism contract
 * is that the worker count can never leak into a result.
 */
TEST(TrafficFuzz, ServingStatsBytesStableAcross50Seeds)
{
    for (uint64_t seed = 0; seed < 50; ++seed) {
        traffic::TrafficConfig tc;
        tc.seed = seed;
        tc.clients = 200 + static_cast<int64_t>(seed % 11) * 50;
        tc.requestHz = 8.0 + static_cast<double>(seed % 5);
        tc.durationSeconds = 0.15;
        tc.zipfSkew = 0.09 * static_cast<double>(seed % 11);
        tc.keySpace = 256 << (seed % 3);
        tc.getFraction = 0.5 + 0.04 * static_cast<double>(seed % 10);
        tc.shards = 1 + static_cast<int>(seed % 6);
        std::vector<traffic::Request> reqs =
            traffic::generateRequests(tc);

        traffic::ServingConfig sc;
        sc.nodes = {makeXenoServer(), makeAetherServer()};
        for (int s = 0; s < tc.shards; ++s)
            sc.placement.push_back(
                static_cast<int>((seed + static_cast<uint64_t>(s)) %
                                 2));
        sc.sloUs = 500.0 + 100.0 * static_cast<double>(seed % 4);
        sc.migrations = {{static_cast<int>(seed) % tc.shards,
                          0.02 + 0.002 * static_cast<double>(seed),
                          static_cast<int>(seed % 2)}};
        sc.crashes = {{static_cast<int>(seed % 2),
                       0.05 + 0.001 * static_cast<double>(seed), 30.0}};

        std::string dumps[2];
        const char *threads[2] = {"1", "4"};
        for (int i = 0; i < 2; ++i) {
            setenv("XISA_BENCH_THREADS", threads[i], 1);
            obs::StatRegistry reg;
            traffic::ServingSim sim(
                sc, traffic::ServingProfile::synthetic(), reg, "fz");
            sim.run(reqs);
            std::ostringstream os;
            reg.dumpJson(os);
            dumps[i] = os.str();
        }
        unsetenv("XISA_BENCH_THREADS");
        ASSERT_EQ(dumps[0], dumps[1]) << "seed " << seed;
    }
}

} // namespace
} // namespace xisa
