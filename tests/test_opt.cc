/**
 * @file
 * Optimizer tests: targeted transformations, semantic preservation
 * (differential against the unoptimized program across all workloads),
 * and measurable instruction-count reductions.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "compiler/opt.hh"
#include "frontend/minic.hh"
#include "ir/builder.hh"
#include "ir/interp.hh"
#include "os/os.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

int64_t
runMain(const Module &mod)
{
    return IRInterp(mod, 1ull << 34).runEntry().retVal;
}

TEST(Optimizer, FoldsConstantArithmetic)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId a = f.constInt(6);
    ValueId b = f.constInt(7);
    ValueId c = f.mul(a, b);
    ValueId d = f.add(c, f.constInt(8));
    f.ret(d);
    Module mod = mb.finish();
    OptStats stats = optimizeModule(mod);
    EXPECT_GE(stats.constantsFolded, 2u);
    EXPECT_EQ(runMain(mod), 50);
    // After folding + DCE, main's entry block shrinks.
    const IRFunction &fn = mod.func(mod.entryFuncId);
    size_t instrs = 0;
    for (const BasicBlock &bb : fn.blocks)
        instrs += bb.instrs.size();
    EXPECT_LE(instrs, 3u); // two consts die; one const + ret remain
}

TEST(Optimizer, StrengthReducesPowerOfTwoMultiply)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {Type::I64});
    ValueId x = f.mulImm(f.param(0), 8);
    ValueId y = f.urem(x, f.constInt(16));
    f.ret(f.add(x, y));
    Module mod = mb.finish();
    OptStats stats = optimizeModule(mod);
    EXPECT_GE(stats.strengthReduced, 2u);
    bool sawMul = false, sawShl = false, sawAnd = false;
    for (const BasicBlock &bb : mod.func(mod.entryFuncId).blocks) {
        for (const IRInstr &in : bb.instrs) {
            sawMul |= in.op == IROp::Mul;
            sawShl |= in.op == IROp::Shl;
            sawAnd |= in.op == IROp::And;
        }
    }
    EXPECT_FALSE(sawMul);
    EXPECT_TRUE(sawShl);
    EXPECT_TRUE(sawAnd);
    EXPECT_EQ(IRInterp(mod).run(mod.entryFuncId, {5}).retVal,
              40 + 40 % 16);
}

TEST(Optimizer, SimplifiesAlgebraicIdentities)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {Type::I64});
    ValueId zero = f.constInt(0);
    ValueId one = f.constInt(1);
    ValueId a = f.add(f.param(0), zero);   // x + 0
    ValueId b = f.mul(a, one);             // x * 1
    ValueId c = f.bxor(b, zero);           // x ^ 0
    ValueId d = f.mul(c, zero);            // x * 0 -> 0
    f.ret(f.add(c, d));
    Module mod = mb.finish();
    OptStats stats = optimizeModule(mod);
    EXPECT_GE(stats.identitiesSimplified, 3u);
    EXPECT_EQ(IRInterp(mod).run(mod.entryFuncId, {123}).retVal, 123);
}

TEST(Optimizer, RemovesDeadPureCode)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    for (int i = 0; i < 10; ++i)
        f.mul(f.constInt(i), f.constInt(i + 1)); // all dead
    f.ret(f.constInt(9));
    Module mod = mb.finish();
    OptStats stats = optimizeModule(mod);
    EXPECT_GE(stats.deadInstrsRemoved, 10u);
    size_t instrs = 0;
    for (const BasicBlock &bb : mod.func(mod.entryFuncId).blocks)
        instrs += bb.instrs.size();
    EXPECT_EQ(instrs, 2u); // const + ret
}

TEST(Optimizer, NeverRemovesSideEffects)
{
    ModuleBuilder mb("t");
    uint32_t g = mb.addGlobal("g", 8);
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    // A store whose stored value is otherwise dead, and a discarded
    // atomic, must both survive.
    f.store(Type::I64, f.globalAddr(g), f.constInt(7));
    f.atomicAdd(f.globalAddr(g), f.constInt(5));
    f.callVoid(mb.builtin(Builtin::PrintI64),
               {f.load(Type::I64, f.globalAddr(g))});
    f.ret(f.load(Type::I64, f.globalAddr(g)));
    Module mod = mb.finish();
    optimizeModule(mod);
    IRRunResult r = IRInterp(mod).runEntry();
    EXPECT_EQ(r.retVal, 12);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], "12");
}

TEST(Optimizer, CopyPropagationRespectsRedefinition)
{
    // y = copy x; x = 99; use(y) must still see the old x.
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId x = f.newReg(Type::I64);
    ValueId y = f.newReg(Type::I64);
    f.copy(x, f.constInt(5));
    f.copy(y, x);
    f.copy(x, f.constInt(99));
    f.ret(f.add(y, x)); // 5 + 99
    Module mod = mb.finish();
    optimizeModule(mod);
    EXPECT_EQ(runMain(mod), 104);
}

TEST(Optimizer, FoldsFloatExpressions)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId a = f.fmul(f.constFloat(2.5), f.constFloat(4.0));
    ValueId b = f.fadd(a, f.sitofp(f.constInt(2)));
    f.ret(f.fptosi(b)); // 12
    Module mod = mb.finish();
    OptStats stats = optimizeModule(mod);
    EXPECT_GE(stats.constantsFolded, 3u);
    EXPECT_EQ(runMain(mod), 12);
}

class OptWorkloadTest : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(OptWorkloadTest, OptimizationPreservesSemantics)
{
    Module plain = buildWorkload(GetParam(), ProblemClass::A, 1);
    Module opt = buildWorkload(GetParam(), ProblemClass::A, 1);
    optimizeModule(opt);
    IRRunResult a = IRInterp(plain, 1ull << 34).runEntry();
    IRRunResult b = IRInterp(opt, 1ull << 34).runEntry();
    EXPECT_EQ(a.output, b.output) << workloadName(GetParam());
    EXPECT_EQ(a.retVal, b.retVal) << workloadName(GetParam());
}

TEST_P(OptWorkloadTest, OptimizationNeverSlowsExecutionDown)
{
    // Strength reduction can add instructions (an extra constant) while
    // removing expensive ones, so the honest metric is simulated
    // cycles on a node, not the instruction count.
    Module mod = buildWorkload(GetParam(), ProblemClass::A, 1);
    CompileOptions off;
    off.optimize = false;
    off.boundaryMigPoints = false;
    CompileOptions on;
    on.boundaryMigPoints = false;
    MultiIsaBinary plain = compileModule(mod, off);
    MultiIsaBinary opt = compileModule(mod, on);
    OsConfig cfg;
    cfg.nodes = {makeXenoServer()};
    double tPlain, tOpt;
    {
        ReplicatedOS os(plain, cfg);
        os.load(0);
        tPlain = os.run().makespanSeconds;
    }
    {
        ReplicatedOS os(opt, cfg);
        os.load(0);
        tOpt = os.run().makespanSeconds;
    }
    EXPECT_LE(tOpt, tPlain * 1.01) << workloadName(GetParam());
}

TEST(Optimizer, SpeedsUpTheFoldHeavyKernels)
{
    // CG's index arithmetic folds substantially.
    Module mod = buildWorkload(WorkloadId::CG, ProblemClass::A, 1);
    Module opt = buildWorkload(WorkloadId::CG, ProblemClass::A, 1);
    OptStats stats = optimizeModule(opt);
    EXPECT_GT(stats.total(), 10u);
    IRRunResult a = IRInterp(mod, 1ull << 34).runEntry();
    IRRunResult b = IRInterp(opt, 1ull << 34).runEntry();
    EXPECT_LT(b.instrCount, a.instrCount);
}

TEST_P(OptWorkloadTest, OptimizedBinariesStillMigrateCorrectly)
{
    Module mod = buildWorkload(GetParam(), ProblemClass::A, 1);
    IRRunResult ref = IRInterp(mod, 1ull << 34).runEntry();
    MultiIsaBinary bin = compileModule(std::move(mod)); // optimize=true
    OsConfig cfg = OsConfig::dualServer();
    ReplicatedOS os(bin, cfg);
    os.load(0);
    int fired = 0;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (self.totalInstrs() >
                static_cast<uint64_t>(fired + 1) * 120000 &&
            fired < 2) {
            self.migrateProcess(1 - self.threadNode(0));
            ++fired;
        }
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.output, ref.output) << workloadName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, OptWorkloadTest, ::testing::ValuesIn(allWorkloads()),
    [](const auto &info) { return std::string(workloadName(info.param)); });


TEST(Mem2Reg, PromotesNonEscapingScalars)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t slot = f.declareAlloca(8, 8, "x");
    ValueId a = f.allocaAddr(slot);
    f.store(Type::I64, a, f.constInt(5));
    ValueId v = f.load(Type::I64, a);
    f.ret(v);
    Module mod = mb.finish();
    IRFunction &fn = mod.func(mod.entryFuncId);
    EXPECT_EQ(promoteAllocas(fn), 1u);
    EXPECT_TRUE(fn.allocas.empty());
    mod.verify();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 5);
}

TEST(Mem2Reg, EscapedAddressesStayInMemory)
{
    ModuleBuilder mb("t");
    FuncBuilder &g = mb.defineFunc("g", Type::Void, {Type::Ptr});
    g.store(Type::I64, g.param(0), g.constInt(9));
    g.ret();
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t esc = f.declareAlloca(8, 8, "escapes");
    uint32_t arr = f.declareAlloca(32, 8, "array");
    ValueId a = f.allocaAddr(esc);
    f.callVoid(mb.findFunc("g"), {a});      // address escapes
    ValueId b = f.allocaAddr(arr);
    f.storeIdx(Type::I64, b, f.constInt(1), f.constInt(3), 8);
    f.ret(f.load(Type::I64, a));
    Module mod = mb.finish();
    IRFunction &fn = mod.func(mod.findFunc("main"));
    EXPECT_EQ(promoteAllocas(fn), 0u);
    EXPECT_EQ(fn.allocas.size(), 2u);
    mod.verify();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 9);
}

TEST(Mem2Reg, SlotIndicesStayValidAfterPartialPromotion)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t keep = f.declareAlloca(64, 8, "big");   // not promotable
    uint32_t go = f.declareAlloca(8, 8, "scalar");   // promotable
    uint32_t keep2 = f.declareAlloca(16, 8, "pair"); // not promotable
    ValueId s = f.allocaAddr(go);
    f.store(Type::I64, s, f.constInt(3));
    ValueId kb = f.allocaAddr(keep);
    f.store(Type::I64, kb, f.constInt(10), 8);
    ValueId k2 = f.allocaAddr(keep2);
    f.store(Type::I64, k2, f.constInt(20), 8);
    f.ret(f.add(f.load(Type::I64, s),
                f.add(f.load(Type::I64, kb, 8),
                      f.load(Type::I64, k2, 8))));
    Module mod = mb.finish();
    IRFunction &fn = mod.func(mod.entryFuncId);
    EXPECT_EQ(promoteAllocas(fn), 1u);
    EXPECT_EQ(fn.allocas.size(), 2u);
    mod.verify();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 33);
}

TEST(Mem2Reg, PromotedMiniCLocalsAppearInStackmaps)
{
    // After mem2reg, a MiniC loop counter is a vreg, so at migration
    // points it shows up as a live value (possibly in a callee-saved
    // register) rather than as anonymous alloca bytes.
    const char *src = R"(
        long work(long n) {
            long acc = 7;
            for (long i = 0; i < n; i += 1) {
                migrate_point();
                acc = acc + i * i;
            }
            return acc;
        }
        long main() { return work(50); }
    )";
    Module mod = compileMiniC(src);
    MultiIsaBinary bin = compileModule(std::move(mod));
    bool sawLiveAtMigPoint = false;
    for (const auto &[id, site] : bin.callSite[0])
        if (site.isMigrationPoint && site.live.size() >= 2)
            sawLiveAtMigPoint = true;
    EXPECT_TRUE(sawLiveAtMigPoint)
        << "promoted locals should be live values at the loop's "
           "migration point";
    // And the program still migrates correctly.
    IRRunResult ref = IRInterp(bin.ir, 1ull << 33).runEntry();
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 120;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.onQuantum = [](ReplicatedOS &self) {
        self.migrateProcess(1 - self.threadNode(0));
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_GE(os.migrations().size(), 2u);
}

} // namespace
} // namespace xisa
