/**
 * @file
 * hDSM protocol tests: MSI state transitions, invalidation, transfer
 * accounting, and a randomized property test against a shadow memory.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "dsm/dsm.hh"
#include "util/rng.hh"

namespace xisa {
namespace {

constexpr uint64_t kBase = 0x10000000ull;

struct DsmFixture : ::testing::Test {
    Interconnect net;
    DsmSpace dsm{2, &net, {3.5, 2.4}};
};

TEST_F(DsmFixture, PopulateMakesHomeNodeModified)
{
    uint64_t v = 0xdeadbeef;
    dsm.populate(0, kBase, &v, 8);
    EXPECT_EQ(dsm.state(0, kBase / vm::kPageSize), PageState::Modified);
    EXPECT_EQ(dsm.state(1, kBase / vm::kPageSize), PageState::Invalid);
    EXPECT_EQ(dsm.modifiedOwner(kBase / vm::kPageSize), 0);
}

TEST_F(DsmFixture, RemoteReadSharesThePage)
{
    uint64_t v = 42;
    dsm.populate(0, kBase, &v, 8);
    uint64_t got = 0;
    uint64_t cost = dsm.port(1).read(kBase, &got, 8);
    EXPECT_EQ(got, 42u);
    EXPECT_GT(cost, 0u) << "remote fetch must cost cycles";
    EXPECT_EQ(dsm.state(0, kBase / vm::kPageSize), PageState::Shared);
    EXPECT_EQ(dsm.state(1, kBase / vm::kPageSize), PageState::Shared);
    EXPECT_EQ(dsm.stats().readFaults, 1u);
    EXPECT_EQ(dsm.stats().pagesTransferred, 1u);
    // Second read is a local hit.
    EXPECT_EQ(dsm.port(1).read(kBase, &got, 8), 0u);
}

TEST_F(DsmFixture, RemoteWriteInvalidatesOtherCopies)
{
    uint64_t v = 1;
    dsm.populate(0, kBase, &v, 8);
    uint64_t got;
    dsm.port(1).read(kBase, &got, 8); // both Shared
    uint64_t w = 7;
    uint64_t cost = dsm.port(1).write(kBase, &w, 8);
    EXPECT_GT(cost, 0u);
    EXPECT_EQ(dsm.state(1, kBase / vm::kPageSize), PageState::Modified);
    EXPECT_EQ(dsm.state(0, kBase / vm::kPageSize), PageState::Invalid);
    EXPECT_GE(dsm.stats().invalidations, 1u);
    // Node 0 reading again must see node 1's write (fresh fetch).
    dsm.port(0).read(kBase, &got, 8);
    EXPECT_EQ(got, 7u);
    dsm.checkInvariants();
}

TEST_F(DsmFixture, ColdPagesMaterializeWithoutTraffic)
{
    uint64_t got = 1;
    EXPECT_EQ(dsm.port(0).read(kBase + 0x5000, &got, 8), 0u);
    EXPECT_EQ(got, 0u);
    EXPECT_EQ(dsm.stats().pagesTransferred, 0u);
}

TEST_F(DsmFixture, WriteThenWriteOnOwnerIsFree)
{
    uint64_t w = 5;
    dsm.port(0).write(kBase, &w, 8);
    EXPECT_EQ(dsm.port(0).write(kBase + 8, &w, 8), 0u);
}

TEST_F(DsmFixture, CrossPageAccessFaultsBothPages)
{
    uint64_t v[2] = {0x1111, 0x2222};
    dsm.populate(0, kBase + vm::kPageSize - 4, v, 8);
    uint64_t got = 0;
    dsm.port(1).read(kBase + vm::kPageSize - 4, &got, 8);
    EXPECT_EQ(got & 0xffffffffu, 0x1111u);
    EXPECT_EQ(dsm.stats().pagesTransferred, 2u);
}

TEST_F(DsmFixture, VdsoBroadcastIsVisibleEverywhereWithoutFaults)
{
    dsm.broadcastWrite64(vm::kVdsoBase, 99);
    for (int n = 0; n < 2; ++n) {
        uint64_t got = 0;
        EXPECT_EQ(dsm.port(n).read(vm::kVdsoBase, &got, 8), 0u);
        EXPECT_EQ(got, 99u);
    }
    EXPECT_EQ(dsm.stats().readFaults, 0u);
}

TEST_F(DsmFixture, PeekNeverDisturbsProtocolState)
{
    uint64_t v = 13;
    dsm.populate(0, kBase, &v, 8);
    uint64_t got = 0;
    dsm.peek(kBase, &got, 8);
    EXPECT_EQ(got, 13u);
    EXPECT_EQ(dsm.state(0, kBase / vm::kPageSize), PageState::Modified);
    EXPECT_EQ(dsm.state(1, kBase / vm::kPageSize), PageState::Invalid);
}

TEST(DsmProperty, RandomOpsMatchShadowMemoryAcrossThreeNodes)
{
    Interconnect net;
    DsmSpace dsm(3, &net, {3.5, 2.4, 2.4});
    std::map<uint64_t, uint64_t> shadow; // word address -> value
    Rng rng(2024);
    const uint64_t words = 512; // spans two pages
    for (int op = 0; op < 20000; ++op) {
        int node = static_cast<int>(rng.below(3));
        uint64_t addr = kBase + rng.below(words) * 8;
        if (rng.below(2) == 0) {
            uint64_t v = rng.next();
            dsm.port(node).write(addr, &v, 8);
            shadow[addr] = v;
        } else {
            uint64_t got = 0;
            dsm.port(node).read(addr, &got, 8);
            auto it = shadow.find(addr);
            ASSERT_EQ(got, it == shadow.end() ? 0 : it->second)
                << "op " << op << " node " << node;
        }
        if (op % 1000 == 0)
            dsm.checkInvariants();
    }
    dsm.checkInvariants();
    EXPECT_GT(dsm.stats().pagesTransferred, 10u);
    EXPECT_GT(dsm.stats().invalidations, 10u);
}

TEST_F(DsmFixture, FencedHealRejectsMinorityWritesAndResyncs)
{
    uint64_t a = 0xA;
    dsm.populate(0, kBase, &a, 8);
    uint64_t got = 0;
    dsm.port(1).read(kBase, &got, 8); // both Shared
    ASSERT_EQ(got, 0xAu);

    dsm.beginPartition({1});
    EXPECT_TRUE(dsm.partitionActive());
    EXPECT_EQ(dsm.nodeEpoch(0), 1u);
    EXPECT_EQ(dsm.nodeEpoch(1), 1u);

    // The minority writes during the cut: its upgrade INVAL for node
    // 0's copy cannot cross, so it is deferred into the fenced outbox
    // and both sides keep serving their own (now divergent) copy.
    uint64_t c = 0xC;
    dsm.port(1).write(kBase, &c, 8);
    dsm.port(0).read(kBase, &got, 8);
    EXPECT_EQ(got, 0xAu) << "majority must keep its pre-cut value";
    dsm.port(1).read(kBase, &got, 8);
    EXPECT_EQ(got, 0xCu) << "minority serves its own write locally";

    dsm.healPartition();
    EXPECT_FALSE(dsm.partitionActive());
    // The heal minted a new epoch everywhere, recognized the deferred
    // INVAL as stale (sent under epoch 1, received under epoch 2), and
    // re-synced the divergent page from the majority side.
    EXPECT_EQ(dsm.nodeEpoch(0), 2u);
    EXPECT_EQ(dsm.nodeEpoch(1), 2u);
    EXPECT_EQ(dsm.fencedMessages(), 1u);
    EXPECT_EQ(dsm.pagesResynced(), 1u);
    dsm.port(0).read(kBase, &got, 8);
    EXPECT_EQ(got, 0xAu) << "majority copy is authoritative after heal";
    dsm.port(1).read(kBase, &got, 8);
    EXPECT_EQ(got, 0xAu) << "minority rejoins by re-sync, not replay";
    dsm.checkInvariants();
}

TEST_F(DsmFixture, UnfencedHealReplaysSplitBrainWrite)
{
    // Regression shape: with the epoch fence off, the heal applies the
    // stale pre-heal INVAL verbatim, killing the majority's good copy;
    // the majority then refetches the minority's partition-era write.
    dsm.setEpochFencing(false);
    uint64_t a = 0xA;
    dsm.populate(0, kBase, &a, 8);
    uint64_t got = 0;
    dsm.port(1).read(kBase, &got, 8); // both Shared

    dsm.beginPartition({1});
    uint64_t c = 0xC;
    dsm.port(1).write(kBase, &c, 8); // INVAL deferred across the cut
    dsm.healPartition();

    EXPECT_EQ(dsm.fencedMessages(), 0u) << "fence off: nothing rejected";
    EXPECT_EQ(dsm.pagesResynced(), 0u) << "fence off: no re-sync";
    // Epochs still advance at every heal -- fencing only controls
    // whether the receiver ENFORCES them by rejecting stale messages.
    EXPECT_EQ(dsm.nodeEpoch(0), 2u);
    EXPECT_EQ(dsm.nodeEpoch(1), 2u);
    dsm.port(0).read(kBase, &got, 8);
    EXPECT_EQ(got, 0xCu)
        << "split-brain: the minority's pre-heal write won";
}

TEST_F(DsmFixture, PartitionFencingCountersReachTheRegistry)
{
    obs::StatRegistry reg;
    dsm.registerStats(reg);
    uint64_t a = 0xA;
    dsm.populate(0, kBase, &a, 8);
    uint64_t got = 0;
    dsm.port(1).read(kBase, &got, 8);
    dsm.beginPartition({1});
    uint64_t c = 0xC;
    dsm.port(1).write(kBase, &c, 8);
    dsm.healPartition();
    EXPECT_EQ(reg.counterValue("xfault.fenced_messages"), 1u);
    EXPECT_EQ(reg.counterValue("xfault.pages_resynced"), 1u);
    // The deferred INVAL was first refused by the live cut.
    EXPECT_EQ(reg.counterValue("xfault.cut_rejects"), 1u);
}

TEST(Interconnect, CostModelIsLatencyPlusBandwidth)
{
    Interconnect::Config cfg;
    cfg.latencyUs = 2.0;
    cfg.gbitPerSec = 8.0; // 1 GB/s
    Interconnect net(cfg);
    EXPECT_NEAR(net.transferSeconds(0), 2e-6, 1e-12);
    EXPECT_NEAR(net.transferSeconds(1000000), 2e-6 + 1e-3, 1e-9);
    uint64_t cycles = net.charge(1000000, 1.0); // 1 GHz
    EXPECT_NEAR(static_cast<double>(cycles), (2e-6 + 1e-3) * 1e9, 2.0);
    EXPECT_EQ(net.messages(), 1u);
    EXPECT_EQ(net.bytes(), 1000000u);
}

} // namespace
} // namespace xisa
