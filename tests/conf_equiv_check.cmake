# Script-mode runner for the conf-equivalence guard.
#
#   cmake -DLEGACY=<legacy bench binary> -DRUNNER=<xisa_exp binary>
#         -DCONF=<experiment .conf> -DOUT=<scratch file prefix>
#         -P conf_equiv_check.cmake
#
# Runs the legacy bench and `xisa_exp CONF` in XISA_QUICK mode and
# fails unless their stdout is byte-identical: a checked-in conf that
# mirrors a legacy bench must reproduce its report exactly, or the
# config-driven platform has drifted from the paper harnesses.

foreach(var LEGACY RUNNER CONF OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "conf_equiv_check.cmake: ${var} not set")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env XISA_QUICK=1 ${LEGACY}
    OUTPUT_FILE ${OUT}.legacy
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${LEGACY} exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env XISA_QUICK=1 ${RUNNER} ${CONF}
    OUTPUT_FILE ${OUT}.conf
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${RUNNER} ${CONF} exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}.legacy ${OUT}.conf
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "xisa_exp ${CONF} differs from ${LEGACY} "
            "(see ${OUT}.legacy vs ${OUT}.conf); conf-driven runs "
            "must reproduce the legacy report byte-for-byte")
endif()
