/**
 * @file
 * Unit tests for util/: logging, formatting, statistics, RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace xisa {
namespace {

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(strfmt("%05d", 7), "00007");
    EXPECT_EQ(strfmt("%.3f", 1.5), "1.500");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error %d", 1), FatalError);
    try {
        fatal("code %d", 99);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "code 99");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, CheckMacroFiresOnFalse)
{
    EXPECT_THROW(XISA_CHECK(1 == 2, "math broke"), PanicError);
    EXPECT_NO_THROW(XISA_CHECK(1 == 1, "fine"));
}

TEST(RunningStat, TracksMinMaxMeanCount)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(BoxSummary, MatchesNumpyType7Quantiles)
{
    // numpy.percentile([1..5], [25,50,75]) == [2, 3, 4]
    BoxSummary box = boxSummary({5, 3, 1, 2, 4});
    EXPECT_DOUBLE_EQ(box.min, 1);
    EXPECT_DOUBLE_EQ(box.q1, 2);
    EXPECT_DOUBLE_EQ(box.median, 3);
    EXPECT_DOUBLE_EQ(box.q3, 4);
    EXPECT_DOUBLE_EQ(box.max, 5);
    EXPECT_EQ(box.count, 5u);
}

TEST(BoxSummary, InterpolatesBetweenOrderStatistics)
{
    // numpy.percentile([1,2,3,4], 25) == 1.75
    BoxSummary box = boxSummary({1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(box.q1, 1.75);
    EXPECT_DOUBLE_EQ(box.median, 2.5);
    EXPECT_DOUBLE_EQ(box.q3, 3.25);
}

TEST(BoxSummary, HandlesDegenerateInputs)
{
    BoxSummary empty = boxSummary({});
    EXPECT_EQ(empty.count, 0u);
    BoxSummary one = boxSummary({7.0});
    EXPECT_DOUBLE_EQ(one.min, 7.0);
    EXPECT_DOUBLE_EQ(one.median, 7.0);
    EXPECT_DOUBLE_EQ(one.max, 7.0);
}

TEST(DecadeHistogram, BucketsByPowerOfTen)
{
    DecadeHistogram h(0, 6);
    h.add(1);      // 10^0
    h.add(9.99);   // 10^0
    h.add(10);     // 10^1
    h.add(12345);  // 10^4
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(DecadeHistogram, ClampsOutOfRangeSamples)
{
    DecadeHistogram h(2, 4);
    h.add(5);        // below 10^2 -> clamped to decade 2
    h.add(1e9);      // above 10^4 -> clamped to decade 4
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(5), 0u); // out of range reads return 0
}

TEST(DecadeHistogram, RejectsNonPositive)
{
    DecadeHistogram h(0, 3);
    EXPECT_THROW(h.add(0), FatalError);
    EXPECT_THROW(h.add(-5), FatalError);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4, 9}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_THROW(geomean({1, -1}), FatalError);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenIsInclusive)
{
    Rng rng(42);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.between(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all values hit
}

TEST(Rng, UniformCoversUnitInterval)
{
    Rng rng(7);
    double lo = 1.0, hi = 0.0, sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        sum += u;
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

} // namespace
} // namespace xisa
