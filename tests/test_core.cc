/**
 * @file
 * Core-runtime tests: transformation cost model, gap profiling, and the
 * migration-point planner.
 */

#include <gtest/gtest.h>

#include "core/migprofile.hh"
#include "core/stacktransform.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

TEST(TransformCost, MonotoneInFramesValuesAndBytes)
{
    NodeSpec x86 = makeXenoServer();
    TransformStats small;
    small.frames = 2;
    small.liveValues = 4;
    small.bytesCopied = 128;
    TransformStats big = small;
    big.frames = 8;
    EXPECT_GT(StackTransformer::costCycles(big, x86),
              StackTransformer::costCycles(small, x86));
    big = small;
    big.liveValues = 40;
    EXPECT_GT(StackTransformer::costCycles(big, x86),
              StackTransformer::costCycles(small, x86));
    big = small;
    big.bytesCopied = 1 << 20;
    EXPECT_GT(StackTransformer::costCycles(big, x86),
              StackTransformer::costCycles(small, x86));
}

TEST(TransformCost, ArmLikeCorePaysMorePerTransform)
{
    TransformStats work;
    work.frames = 5;
    work.liveValues = 20;
    work.bytesCopied = 512;
    uint64_t x86 = StackTransformer::costCycles(work, makeXenoServer());
    uint64_t arm =
        StackTransformer::costCycles(work, makeAetherServer());
    EXPECT_GT(arm, x86);
    // Wall-clock ratio close to the paper's ~2x.
    double x86Sec = static_cast<double>(x86) *
                    makeXenoServer().secondsPerCycle();
    double armSec = static_cast<double>(arm) *
                    makeAetherServer().secondsPerCycle();
    EXPECT_GT(armSec / x86Sec, 1.5);
    EXPECT_LT(armSec / x86Sec, 3.5);
}

TEST(GapProfiler, BoundaryPointsLeaveLargeGapsInLoops)
{
    Module mod = buildWorkload(WorkloadId::CG, ProblemClass::A, 1);
    GapProfile prof = profileMigrationGaps(mod, CompileOptions{});
    // Serial CG executes few boundary points: entries/exits of main,
    // cg_init and cg_worker only.
    EXPECT_GE(prof.checksExecuted, 4u);
    EXPECT_GT(prof.maxGap, 10000u)
        << "CG's main loops should dwarf the boundary-point spacing";
    EXPECT_FALSE(prof.blockWeight.empty());
    EXPECT_GT(prof.totalInstrs, 100000u);
}

TEST(GapPlanner, InsertedLoopPointsShrinkTheMaxGap)
{
    Module mod = buildWorkload(WorkloadId::CG, ProblemClass::A, 1);
    const uint64_t target = 20000;
    MigPointPlan plan = planMigrationPoints(mod, target);
    EXPECT_FALSE(plan.points.empty());
    EXPECT_LT(plan.after.maxGap, plan.before.maxGap);
    EXPECT_LE(plan.after.maxGap, target)
        << "planner should reach the target on CG";
    // More checks executed after instrumentation.
    EXPECT_GT(plan.after.checksExecuted, plan.before.checksExecuted);
}

TEST(GapPlanner, PointsTargetLoopBlocks)
{
    Module mod = buildWorkload(WorkloadId::IS, ProblemClass::A, 1);
    MigPointPlan plan = planMigrationPoints(mod, 30000);
    for (const MigPointSpec &spec : plan.points) {
        const IRFunction &f = mod.func(spec.funcId);
        EXPECT_FALSE(f.isBuiltin());
        EXPECT_GT(f.blocks[spec.blockId].loopDepth, 0) << f.name;
    }
}

} // namespace
} // namespace xisa
