/**
 * @file
 * Unit tests for the traffic layer: the deterministic transcendentals,
 * the statistical shape of the generated stream (Poisson arrivals,
 * Zipf popularity, GET/SET mix, key-hash sharding), and the serving
 * simulator's core contracts -- byte-determinism across worker counts,
 * live migration relieving an overloaded shard, and result fields
 * agreeing with the registered counters.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "machine/node.hh"
#include "obs/registry.hh"
#include "traffic/traffic.hh"
#include "util/rng.hh"

namespace xisa {
namespace {

using traffic::Request;
using traffic::ServingConfig;
using traffic::ServingProfile;
using traffic::ServingResult;
using traffic::ServingSim;
using traffic::TrafficConfig;

/** A small stream that runs in milliseconds. */
TrafficConfig
smallConfig()
{
    TrafficConfig cfg;
    cfg.seed = 7;
    cfg.clients = 1000;
    cfg.requestHz = 20.0; // 20k req/s aggregate
    cfg.durationSeconds = 0.5;
    cfg.zipfSkew = 0.99;
    cfg.keySpace = 4096;
    cfg.getFraction = 0.9;
    cfg.shards = 4;
    return cfg;
}

std::string
dumpRegistry(const obs::StatRegistry &reg)
{
    std::ostringstream os;
    reg.dumpJson(os);
    return os.str();
}

TEST(Traffic, DetMathMatchesLibm)
{
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        double x = rng.uniform(1e-6, 1e6);
        EXPECT_NEAR(traffic::detLog(x), std::log(x),
                    1e-12 * std::fabs(std::log(x)) + 1e-13)
            << "log(" << x << ")";
    }
    for (int i = 0; i < 2000; ++i) {
        double x = rng.uniform(-40.0, 40.0);
        EXPECT_NEAR(traffic::detExp(x), std::exp(x),
                    1e-12 * std::exp(x))
            << "exp(" << x << ")";
    }
    for (int i = 0; i < 2000; ++i) {
        double x = rng.uniform(0.01, 100.0);
        double y = rng.uniform(-3.0, 3.0);
        EXPECT_NEAR(traffic::detPow(x, y), std::pow(x, y),
                    1e-11 * std::pow(x, y))
            << x << "^" << y;
    }
}

TEST(Traffic, PoissonStreamHasExpectedRateAndOrder)
{
    TrafficConfig cfg = smallConfig();
    std::vector<Request> reqs = traffic::generateRequests(cfg);

    // Count within 5 sigma of rate * duration.
    const double expected = cfg.totalRate() * cfg.durationSeconds;
    EXPECT_NEAR(static_cast<double>(reqs.size()), expected,
                5.0 * std::sqrt(expected));

    double prev = 0.0;
    for (const Request &r : reqs) {
        EXPECT_GE(r.arrival, prev);
        EXPECT_LT(r.arrival, cfg.durationSeconds);
        prev = r.arrival;
    }
}

TEST(Traffic, ZipfSkewConcentratesMass)
{
    // Under theta = 0.99 the hottest 1% of keys should absorb a large
    // share of the stream; under theta = 0 they should absorb ~1%.
    for (double theta : {0.0, 0.99}) {
        TrafficConfig cfg = smallConfig();
        cfg.zipfSkew = theta;
        std::vector<Request> reqs = traffic::generateRequests(cfg);
        std::map<uint32_t, uint64_t> byKey;
        for (const Request &r : reqs)
            ++byKey[r.key];
        std::vector<uint64_t> counts;
        for (const auto &[k, n] : byKey)
            counts.push_back(n);
        std::sort(counts.rbegin(), counts.rend());
        uint64_t top = 0, total = reqs.size();
        size_t topKeys = static_cast<size_t>(cfg.keySpace / 100);
        for (size_t i = 0; i < topKeys && i < counts.size(); ++i)
            top += counts[i];
        double share = static_cast<double>(top) /
                       static_cast<double>(total);
        // Uniform sampling is sparse here (~2.4 requests per key), so
        // the top 1% of keys still overshoot 1% of the mass by order
        // statistics; 10% keeps a wide margin to the skewed case.
        if (theta > 0.5)
            EXPECT_GT(share, 0.30) << "theta=" << theta;
        else
            EXPECT_LT(share, 0.10) << "theta=" << theta;
    }
}

TEST(Traffic, MixAndShardingRespectConfig)
{
    TrafficConfig cfg = smallConfig();
    std::vector<Request> reqs = traffic::generateRequests(cfg);
    ASSERT_FALSE(reqs.empty());

    uint64_t gets = 0;
    std::vector<uint64_t> perShard(cfg.shards, 0);
    for (const Request &r : reqs) {
        if (r.isGet)
            ++gets;
        ASSERT_LT(r.key, cfg.keySpace);
        ASSERT_LT(r.shard, cfg.shards);
        EXPECT_EQ(r.shard,
                  traffic::mix64(r.key) %
                      static_cast<uint64_t>(cfg.shards));
        ++perShard[r.shard];
    }
    EXPECT_NEAR(static_cast<double>(gets) /
                    static_cast<double>(reqs.size()),
                cfg.getFraction, 0.02);
    for (uint64_t n : perShard)
        EXPECT_GT(n, 0u);
}

TEST(Traffic, SameSeedSameStreamDifferentSeedDiffers)
{
    TrafficConfig cfg = smallConfig();
    std::vector<Request> a = traffic::generateRequests(cfg);
    std::vector<Request> b = traffic::generateRequests(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].isGet, b[i].isGet);
    }
    cfg.seed = 8;
    std::vector<Request> c = traffic::generateRequests(cfg);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].arrival != c[i].arrival || a[i].key != c[i].key;
    EXPECT_TRUE(differs);
}

/** Two nodes: fast xeno (0), slow aether (1). */
ServingConfig
twoNodeConfig(int shards)
{
    ServingConfig cfg;
    cfg.nodes = {makeXenoServer(), makeAetherServer()};
    cfg.placement.assign(shards, 1);
    cfg.sloUs = 800.0;
    return cfg;
}

TEST(Traffic, ServingBytesIdenticalAcrossWorkerCounts)
{
    TrafficConfig cfg = smallConfig();
    std::vector<Request> reqs = traffic::generateRequests(cfg);
    ServingConfig sc = twoNodeConfig(cfg.shards);
    sc.migrations = {{0, 0.2, 0}, {2, 0.3, 0}};
    sc.crashes = {{0, 0.4, 30.0}};

    std::string dumps[2];
    const char *threads[2] = {"1", "7"};
    for (int i = 0; i < 2; ++i) {
        setenv("XISA_BENCH_THREADS", threads[i], 1);
        obs::StatRegistry reg;
        ServingSim sim(sc, ServingProfile::synthetic(), reg, "serving");
        sim.run(reqs);
        dumps[i] = dumpRegistry(reg);
    }
    unsetenv("XISA_BENCH_THREADS");
    EXPECT_EQ(dumps[0], dumps[1])
        << "stats bytes depend on the worker count";
}

TEST(Traffic, MigrationRelievesOverloadedShard)
{
    // The stream overloads slow-node shards (synthetic aether mean
    // service ~80 us vs ~5 kreq/s per shard => utilization ~0.4; scale
    // the rate up so it tips past 1).
    TrafficConfig cfg = smallConfig();
    cfg.requestHz = 80.0; // 80 kreq/s: ~20 kreq/s per shard
    std::vector<Request> reqs = traffic::generateRequests(cfg);

    obs::StatRegistry reg;
    ServingConfig staticCfg = twoNodeConfig(cfg.shards);
    ServingSim staticSim(staticCfg, ServingProfile::synthetic(), reg,
                         "static");
    ServingResult rs = staticSim.run(reqs);

    ServingConfig migCfg = staticCfg;
    for (int s = 0; s < cfg.shards; ++s)
        migCfg.migrations.push_back({s, 0.1, 0});
    ServingSim migSim(migCfg, ServingProfile::synthetic(), reg, "mig");
    ServingResult rm = migSim.run(reqs);

    EXPECT_EQ(rm.migrations, static_cast<uint64_t>(cfg.shards));
    EXPECT_LT(rm.p99Us, rs.p99Us);
    EXPECT_LT(rm.sloViolations, rs.sloViolations);
    // Requests land on the destination node after the moves.
    EXPECT_GT(rm.servedByNode[0], 0u);
}

TEST(Traffic, ResultAgreesWithRegisteredCounters)
{
    TrafficConfig cfg = smallConfig();
    std::vector<Request> reqs = traffic::generateRequests(cfg);
    obs::StatRegistry reg;
    ServingConfig sc = twoNodeConfig(cfg.shards);
    sc.migrations = {{1, 0.25, 0}};
    ServingSim sim(sc, ServingProfile::synthetic(), reg, "s");
    ServingResult r = sim.run(reqs);

    EXPECT_EQ(r.requests, reqs.size());
    EXPECT_EQ(r.gets + r.sets, r.requests);
    EXPECT_EQ(reg.counterValue("s.requests"), r.requests);
    EXPECT_EQ(reg.counterValue("s.gets"), r.gets);
    EXPECT_EQ(reg.counterValue("s.sets"), r.sets);
    EXPECT_EQ(reg.counterValue("s.slo_violations"), r.sloViolations);
    EXPECT_EQ(reg.counterValue("s.migrations"), r.migrations);
    EXPECT_EQ(reg.counterValue("s.failovers"), r.failovers);
    uint64_t served = 0;
    for (size_t nd = 0; nd < r.servedByNode.size(); ++nd) {
        EXPECT_EQ(reg.counterValue("s.node" + std::to_string(nd) +
                                   ".served"),
                  r.servedByNode[nd]);
        served += r.servedByNode[nd];
    }
    EXPECT_EQ(served, r.requests);

    // Cumulative deciles are monotone and end at the total.
    for (size_t d = 1; d < r.violationsByDecile.size(); ++d)
        EXPECT_GE(r.violationsByDecile[d], r.violationsByDecile[d - 1]);
    EXPECT_EQ(r.violationsByDecile.back(), r.sloViolations);
}

} // namespace
} // namespace xisa
