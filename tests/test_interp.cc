/**
 * @file
 * Direct machine-interpreter tests: hand-assembled instruction
 * sequences executed on a bare context, covering each operation class's
 * exact semantics (wrapping arithmetic, shift masking, sign/zero
 * extension, link-register vs pushed return addresses, flags for every
 * condition, traps, faults, budget stops).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "binary/multibinary.hh"
#include "machine/interp.hh"
#include "util/logging.hh"

namespace xisa {
namespace {

/** Wrap raw machine code in a runnable one-function binary. */
class RawProgram
{
  public:
    explicit RawProgram(IsaId isa) : isa_(isa)
    {
        bin_.name = "raw";
        IRFunction main;
        main.name = "main";
        main.id = 0;
        main.retType = Type::I64;
        BasicBlock bb;
        IRInstr ret;
        ret.op = IROp::Ret;
        ret.a = kNoValue;
        bb.instrs.push_back(ret);
        main.blocks.push_back(bb);
        main.retType = Type::Void;
        bin_.ir.functions.push_back(main);
        bin_.ir.name = "raw";
    }

    RawProgram &
    emit(MachInstr in)
    {
        in.size = encodedSize(in, isa_);
        code_.push_back(in);
        return *this;
    }

    RawProgram &
    op(MOp o, uint8_t rd = 0, uint8_t rn = 0, uint8_t rm = 0,
       int64_t imm = 0)
    {
        MachInstr in;
        in.op = o;
        in.rd = rd;
        in.rn = rn;
        in.rm = rm;
        in.imm = imm;
        return emit(in);
    }

    /** Finalize, run up to `budget` instructions, return the result. */
    StepResult
    run(ThreadContext &ctx, uint64_t budget = 10000)
    {
        // Always terminate with Hlt as a backstop.
        op(MOp::Hlt);
        FuncImage img;
        img.code = code_;
        uint32_t off = 0;
        for (const MachInstr &in : img.code) {
            img.instrOff.push_back(off);
            off += in.size;
        }
        img.instrOff.push_back(off);
        for (int i = 0; i < kNumIsas; ++i) {
            bin_.image[i].push_back(img);
            bin_.funcAddr[i].push_back(vm::kTextBase);
            bin_.textEnd[i] = vm::kTextBase + off;
        }
        spec_ = isa_ == IsaId::Aether64 ? makeAetherServer()
                                        : makeXenoServer();
        interp_ = std::make_unique<Interp>(bin_, isa_, spec_);
        core_ = std::make_unique<Core>(spec_);
        l2_ = std::make_unique<Cache>(spec_.l2);
        port_ = std::make_unique<LocalMemPort>(mem_);
        ctx.isa = isa_;
        ctx.pc = {0, 0};
        return interp_->run(ctx, *port_, *core_, *l2_, budget);
    }

    SimMemory mem_;

  private:
    IsaId isa_;
    MultiIsaBinary bin_;
    std::vector<MachInstr> code_;
    NodeSpec spec_;
    std::unique_ptr<Interp> interp_;
    std::unique_ptr<Core> core_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<LocalMemPort> port_;
};

TEST(RawInterp, ArithmeticWrapsModulo64)
{
    RawProgram p(IsaId::Aether64);
    ThreadContext ctx;
    ctx.gpr[1] = UINT64_MAX;
    ctx.gpr[2] = 2;
    p.op(MOp::Add, 3, 1, 2);     // wraps to 1
    p.op(MOp::Mul, 4, 1, 2);     // wraps to ~0-1
    p.op(MOp::Neg, 5, 2);
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_EQ(ctx.gpr[3], 1u);
    EXPECT_EQ(ctx.gpr[4], UINT64_MAX - 1);
    EXPECT_EQ(ctx.gpr[5], static_cast<uint64_t>(-2));
}

TEST(RawInterp, ShiftsMaskTheAmount)
{
    RawProgram p(IsaId::Xeno64);
    ThreadContext ctx;
    ctx.gpr[1] = 0x10;
    ctx.gpr[2] = 68; // 68 & 63 == 4
    p.op(MOp::Lsl, 3, 1, 2);
    p.op(MOp::AsrImm, 5, 1, 0, 64 + 3);
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_EQ(ctx.gpr[3], 0x100u);
    EXPECT_EQ(ctx.gpr[5], 0x2u);
}

TEST(RawInterp, LoadsExtendCorrectly)
{
    RawProgram p(IsaId::Aether64);
    uint64_t addr = 0x30000000;
    uint32_t minus2 = static_cast<uint32_t>(-2);
    p.mem_.write(addr, &minus2, 4);
    uint8_t byte = 0xfe;
    p.mem_.write(addr + 8, &byte, 1);
    ThreadContext ctx;
    ctx.gpr[1] = addr;
    p.op(MOp::LdrS32, 2, 1, 0, 0); // sign-extends
    p.op(MOp::Ldr32, 3, 1, 0, 0);  // zero-extends
    p.op(MOp::LdrB, 4, 1, 0, 8);   // zero-extends
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_EQ(ctx.gpr[2], static_cast<uint64_t>(-2));
    EXPECT_EQ(ctx.gpr[3], 0xfffffffeu);
    EXPECT_EQ(ctx.gpr[4], 0xfeu);
}

TEST(RawInterp, PushPopMoveTheStackPointer)
{
    RawProgram p(IsaId::Xeno64);
    const AbiInfo &abi = AbiInfo::of(IsaId::Xeno64);
    ThreadContext ctx;
    ctx.gpr[abi.spReg] = 0x60080000;
    ctx.gpr[3] = 0xabcdef;
    p.op(MOp::Push, 3);
    p.op(MOp::Pop, 7);
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_EQ(ctx.gpr[7], 0xabcdefu);
    EXPECT_EQ(ctx.gpr[abi.spReg], 0x60080000u);
}

TEST(RawInterp, FlagsAndCSetCoverConditions)
{
    for (IsaId isa : {IsaId::Aether64, IsaId::Xeno64}) {
        RawProgram p(isa);
        ThreadContext ctx;
        ctx.gpr[1] = static_cast<uint64_t>(-5); // signed -5, unsigned big
        ctx.gpr[2] = 3;
        p.op(MOp::Cmp, 0, 1, 2);
        MachInstr cs;
        cs.op = MOp::CSet;
        cs.rd = 3;
        cs.cond = Cond::LT; // -5 < 3 signed
        p.emit(cs);
        cs.rd = 4;
        cs.cond = Cond::ULT; // huge unsigned, not below 3
        p.emit(cs);
        cs.rd = 5;
        cs.cond = Cond::NE;
        p.emit(cs);
        StepResult r = p.run(ctx);
        EXPECT_EQ(r.reason, StopReason::Halt);
        EXPECT_EQ(ctx.gpr[3], 1u) << isaName(isa);
        EXPECT_EQ(ctx.gpr[4], 0u) << isaName(isa);
        EXPECT_EQ(ctx.gpr[5], 1u) << isaName(isa);
    }
}

TEST(RawInterp, FloatMoveRoundTripsBitPatterns)
{
    RawProgram p(IsaId::Aether64);
    ThreadContext ctx;
    double val = -123.456;
    int64_t bits;
    std::memcpy(&bits, &val, 8);
    p.op(MOp::FMovImm, 2, 0, 0, bits);
    p.op(MOp::FAdd, 3, 2, 2);
    p.op(MOp::FCvtS, 4, 2);
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_DOUBLE_EQ(ctx.fpr[2], -123.456);
    EXPECT_DOUBLE_EQ(ctx.fpr[3], -246.912);
    EXPECT_EQ(static_cast<int64_t>(ctx.gpr[4]), -123);
}

TEST(RawInterp, AtomicAddReturnsOldValue)
{
    RawProgram p(IsaId::Xeno64);
    uint64_t addr = 0x30001000;
    uint64_t init = 100;
    p.mem_.write(addr, &init, 8);
    ThreadContext ctx;
    ctx.gpr[1] = addr;
    ctx.gpr[2] = 11;
    p.op(MOp::AtomicAdd, 3, 1, 2);
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_EQ(ctx.gpr[3], 100u);
    uint64_t now = 0;
    p.mem_.read(addr, &now, 8);
    EXPECT_EQ(now, 111u);
}

TEST(RawInterp, ReturnToSentinelHaltsWithExitValue)
{
    // Aether64: Ret jumps to LR.
    RawProgram p(IsaId::Aether64);
    const AbiInfo &abi = AbiInfo::of(IsaId::Aether64);
    ThreadContext ctx;
    ctx.gpr[abi.linkReg] = vm::kThreadExitAddr;
    p.op(MOp::MovImm, static_cast<uint8_t>(abi.retReg), 0, 0, 77);
    p.op(MOp::Ret);
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_EQ(r.exitValue, 77u);
}

TEST(RawInterp, XenoReturnPopsTheStack)
{
    RawProgram p(IsaId::Xeno64);
    const AbiInfo &abi = AbiInfo::of(IsaId::Xeno64);
    uint64_t sp = 0x60080000 - 8;
    uint64_t ra = vm::kThreadExitAddr;
    p.mem_.write(sp, &ra, 8);
    ThreadContext ctx;
    ctx.gpr[abi.spReg] = sp;
    ctx.gpr[abi.retReg] = 5;
    p.op(MOp::Ret);
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_EQ(r.exitValue, 5u);
    EXPECT_EQ(ctx.gpr[abi.spReg], sp + 8);
}

TEST(RawInterp, DivisionByZeroFaults)
{
    RawProgram p(IsaId::Aether64);
    ThreadContext ctx;
    ctx.gpr[1] = 10;
    ctx.gpr[2] = 0;
    p.op(MOp::SDiv, 3, 1, 2);
    EXPECT_THROW(p.run(ctx), FatalError);
}

TEST(RawInterp, BudgetStopsMidProgramAndResumes)
{
    RawProgram p(IsaId::Xeno64);
    ThreadContext ctx;
    for (int i = 0; i < 20; ++i)
        p.op(MOp::AddImm, 1, 1, 0, 1);
    StepResult r = p.run(ctx, 5);
    EXPECT_EQ(r.reason, StopReason::Budget);
    EXPECT_EQ(r.instrsRun, 5u);
    EXPECT_EQ(ctx.gpr[1], 5u);
    EXPECT_EQ(ctx.pc.instrIdx, 5u);
}

TEST(RawInterp, BranchesFollowConditions)
{
    RawProgram p(IsaId::Aether64);
    ThreadContext ctx;
    ctx.gpr[1] = 5;
    p.op(MOp::CmpImm, 0, 1, 0, 5);
    MachInstr b;
    b.op = MOp::BCond;
    b.cond = Cond::EQ;
    b.target = 3; // skip the poison move
    p.emit(b);
    p.op(MOp::MovImm, 2, 0, 0, 666); // skipped
    p.op(MOp::MovImm, 3, 0, 0, 42);  // index 3
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    EXPECT_EQ(ctx.gpr[2], 0u);
    EXPECT_EQ(ctx.gpr[3], 42u);
}

TEST(RawInterp, CyclesIncludeCachePenaltiesAndOpCosts)
{
    RawProgram p(IsaId::Aether64);
    ThreadContext ctx;
    ctx.gpr[1] = 0x30002000;
    p.op(MOp::Ldr, 2, 1, 0, 0); // cold: I+D misses
    p.op(MOp::Ldr, 3, 1, 0, 0); // warm
    StepResult r = p.run(ctx);
    EXPECT_EQ(r.reason, StopReason::Halt);
    // 3 instructions total (2 loads + hlt); cycles must exceed raw op
    // costs because of the cold-cache penalties.
    NodeSpec spec = makeAetherServer();
    uint64_t rawCost = 2 * spec.cost(MOp::Ldr) + spec.cost(MOp::Hlt);
    EXPECT_GT(r.cyclesRun, rawCost);
}

} // namespace
} // namespace xisa
