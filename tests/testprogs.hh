/**
 * @file
 * Shared mini-programs and helpers for the test suites.
 */

#ifndef XISA_TESTS_TESTPROGS_HH
#define XISA_TESTS_TESTPROGS_HH

#include "compiler/compile.hh"
#include "ir/builder.hh"
#include "ir/interp.hh"
#include "os/os.hh"

namespace xisa::testing {

/** Compile `mod` and run it on the dual-server testbed from `node`. */
inline OsRunResult
runCompiled(const Module &mod, int startNode,
            const CompileOptions &opts = {})
{
    MultiIsaBinary bin = compileModule(mod, opts);
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(startNode);
    return os.run();
}

/** Run `mod` under the reference IR interpreter. */
inline IRRunResult
runReference(const Module &mod)
{
    IRInterp interp(mod);
    return interp.runEntry();
}

/**
 * sum of i*i for i in [0,n) plus a recursive gcd, printing results.
 * Exercises loops, recursion, globals, and prints.
 */
Module makeArithProgram(int64_t n);

/** Float-heavy kernel: dot products and running sums with prints. */
Module makeFloatProgram(int64_t n);

/**
 * Passes pointers to stack allocas down a call chain that mutates them
 * -- the stack-transformation stress case.
 */
Module makePointerProgram();

/** TLS counters plus heap arrays, printing a checksum. */
Module makeTlsHeapProgram();

/**
 * A deep recursion (depth `depth`) with live values in every frame and
 * a migration-point-rich leaf. Returns a value that depends on every
 * frame's locals.
 */
Module makeDeepRecursionProgram(int64_t depth);

/** Multi-threaded sum over a shared array using atomic adds + barrier.
 *  Spawns `nthreads` workers. */
Module makeThreadedProgram(int64_t nthreads, int64_t elems);

} // namespace xisa::testing

#endif // XISA_TESTS_TESTPROGS_HH
