/**
 * @file
 * Compiler tests: liveness, backend structure, symbol alignment, and
 * end-to-end differential execution (compiled code on both ISAs must
 * match the reference IR interpreter exactly).
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/backend.hh"
#include "compiler/compile.hh"
#include "compiler/liveness.hh"
#include "compiler/migpass.hh"
#include "testprogs.hh"
#include "util/logging.hh"

namespace xisa {
namespace {

using testing::makeArithProgram;
using testing::makeDeepRecursionProgram;
using testing::makeFloatProgram;
using testing::makePointerProgram;
using testing::makeThreadedProgram;
using testing::makeTlsHeapProgram;
using testing::runCompiled;
using testing::runReference;

// --- Liveness ---------------------------------------------------------

TEST(Liveness, ValueLiveAcrossCallIsRecorded)
{
    ModuleBuilder mb("t");
    FuncBuilder &g = mb.defineFunc("g", Type::I64, {});
    g.ret(g.constInt(1));
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId x = f.constInt(5);           // live across the call
    ValueId y = f.call(mb.findFunc("g"), {});
    f.ret(f.add(x, y));
    Module mod = mb.finish();
    assignCallSiteIds(mod);
    const IRFunction &fn = mod.func(mod.findFunc("main"));
    LivenessInfo live = computeLiveness(fn);
    ASSERT_EQ(live.liveAtSite.size(), 1u);
    const auto &vals = live.liveAtSite.begin()->second;
    EXPECT_EQ(vals.size(), 1u);
    EXPECT_EQ(vals[0], x);
    EXPECT_TRUE(live.liveAcrossCall[x]);
    EXPECT_FALSE(live.liveAcrossCall[y]);
}

TEST(Liveness, DeadValuesNotInStackmap)
{
    ModuleBuilder mb("t");
    FuncBuilder &g = mb.defineFunc("g", Type::I64, {});
    g.ret(g.constInt(1));
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId dead = f.constInt(99);
    (void)dead;
    ValueId y = f.call(mb.findFunc("g"), {});
    f.ret(y);
    Module mod = mb.finish();
    assignCallSiteIds(mod);
    LivenessInfo live = computeLiveness(mod.func(mod.findFunc("main")));
    EXPECT_TRUE(live.liveAtSite.begin()->second.empty());
}

TEST(Liveness, LoopCarriedValuesStayLive)
{
    ModuleBuilder mb("t");
    FuncBuilder &g = mb.defineFunc("g", Type::Void, {});
    g.ret();
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t slot = f.declareAlloca(8, 8, "acc");
    ValueId acc = f.allocaAddr(slot); // live through the whole loop
    f.store(Type::I64, acc, f.constInt(0));
    f.forLoopI(0, 3, [&](ValueId) {
        f.callVoid(mb.findFunc("g"), {});
        f.store(Type::I64, acc,
                f.addImm(f.load(Type::I64, acc), 1));
    });
    f.ret(f.load(Type::I64, acc));
    Module mod = mb.finish();
    assignCallSiteIds(mod);
    LivenessInfo live = computeLiveness(mod.func(mod.findFunc("main")));
    bool found = false;
    for (const auto &[id, vals] : live.liveAtSite)
        for (ValueId v : vals)
            found |= v == acc;
    EXPECT_TRUE(found);
}

// --- Binary structure ---------------------------------------------------

TEST(MultiBinary, AlignedLayoutGivesIdenticalAddresses)
{
    MultiIsaBinary bin = compileModule(makeArithProgram(10));
    ASSERT_TRUE(bin.alignedLayout);
    for (const IRFunction &fn : bin.ir.functions) {
        EXPECT_EQ(bin.funcAddr[0][fn.id], bin.funcAddr[1][fn.id])
            << fn.name;
    }
    // The layout invariant: padded slots never overlap the next symbol.
    for (int i = 0; i < kNumIsas; ++i) {
        uint64_t prevEnd = 0;
        for (const IRFunction &fn : bin.ir.functions) {
            if (fn.isBuiltin())
                continue;
            uint64_t addr = bin.funcAddr[i][fn.id];
            EXPECT_GE(addr, prevEnd);
            prevEnd = addr + bin.image[i][fn.id].codeBytes();
        }
    }
}

TEST(MultiBinary, UnalignedLayoutPacksNaturally)
{
    CompileOptions opts;
    opts.alignedLayout = false;
    MultiIsaBinary bin = compileModule(makeArithProgram(10), opts);
    // Text sizes differ between ISAs, so at least one non-first user
    // function must land at different addresses.
    bool differs = false;
    for (const IRFunction &fn : bin.ir.functions)
        if (!fn.isBuiltin())
            differs |= bin.funcAddr[0][fn.id] != bin.funcAddr[1][fn.id];
    EXPECT_TRUE(differs);
    // Unaligned text is never larger than aligned text.
    MultiIsaBinary aligned = compileModule(makeArithProgram(10));
    for (int i = 0; i < kNumIsas; ++i)
        EXPECT_LE(bin.textEnd[i], aligned.textEnd[i]);
}

TEST(MultiBinary, CallSitesExistOnBothIsasWithSameKeys)
{
    MultiIsaBinary bin = compileModule(makeArithProgram(10));
    ASSERT_FALSE(bin.callSite[0].empty());
    EXPECT_EQ(bin.callSite[0].size(), bin.callSite[1].size());
    for (const auto &[id, site] : bin.callSite[0]) {
        const CallSiteInfo &other = bin.site(IsaId::Xeno64, id);
        EXPECT_EQ(site.funcId, other.funcId);
        EXPECT_EQ(site.isMigrationPoint, other.isMigrationPoint);
        EXPECT_EQ(site.live.size(), other.live.size());
        // Same BIR values recorded, possibly in different locations.
        std::set<ValueId> a, b;
        for (const LiveValue &lv : site.live)
            a.insert(lv.irValue);
        for (const LiveValue &lv : other.live)
            b.insert(lv.irValue);
        EXPECT_EQ(a, b);
    }
}

TEST(MultiBinary, ResolveCodeRoundTrips)
{
    MultiIsaBinary bin = compileModule(makeArithProgram(10));
    for (int i = 0; i < kNumIsas; ++i) {
        IsaId isa = static_cast<IsaId>(i);
        CodeMap map(bin, isa);
        for (const IRFunction &fn : bin.ir.functions) {
            if (fn.isBuiltin())
                continue;
            const FuncImage &img = bin.image[i][fn.id];
            for (uint32_t idx = 0; idx < img.code.size(); ++idx) {
                uint64_t addr = bin.codeAddr(isa, fn.id, idx);
                CodeLoc loc = map.resolve(addr);
                EXPECT_EQ(loc.funcId, fn.id);
                EXPECT_EQ(loc.instrIdx, idx);
            }
        }
        EXPECT_FALSE(map.contains(vm::kTextBase - 1));
    }
}

TEST(MultiBinary, FrameLayoutsDifferAcrossIsas)
{
    MultiIsaBinary bin = compileModule(makePointerProgram());
    uint32_t mainId = bin.ir.findFunc("main");
    const FrameInfo &a = bin.image[0][mainId].frame;
    const FrameInfo &x = bin.image[1][mainId].frame;
    ASSERT_EQ(a.allocaFpOff.size(), x.allocaFpOff.size());
    ASSERT_GE(a.allocaFpOff.size(), 2u);
    // Different alloca placement and/or frame size: the transformation
    // must never degenerate into memcpy.
    bool differs = a.frameSize != x.frameSize;
    for (size_t s = 0; s < a.allocaFpOff.size(); ++s)
        differs |= a.allocaFpOff[s] != x.allocaFpOff[s];
    EXPECT_TRUE(differs);
}

TEST(MultiBinary, MigrationPointsAtFunctionBoundaries)
{
    Module mod = makeArithProgram(10);
    size_t before = countMigPoints(mod);
    EXPECT_EQ(before, 0u);
    MultiIsaBinary bin = compileModule(std::move(mod));
    uint32_t migSites = 0;
    for (const auto &[id, site] : bin.callSite[0])
        migSites += site.isMigrationPoint;
    // gcd: entry + 2 rets; main: entry + 1 ret => 6 (plus the loop
    // structure adds none).
    EXPECT_GE(migSites, 5u);
    // Every function has at least one check recorded in its image.
    for (const IRFunction &fn : bin.ir.functions) {
        if (fn.isBuiltin())
            continue;
        EXPECT_FALSE(bin.image[0][fn.id].migChecks.empty()) << fn.name;
    }
}

// --- Differential execution ----------------------------------------------

class ExecutionTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutionTest, ArithMatchesReference)
{
    Module mod = makeArithProgram(100);
    IRRunResult ref = runReference(mod);
    OsRunResult got = runCompiled(mod, GetParam());
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(got.output, ref.output);
}

TEST_P(ExecutionTest, FloatMatchesReference)
{
    Module mod = makeFloatProgram(64);
    IRRunResult ref = runReference(mod);
    OsRunResult got = runCompiled(mod, GetParam());
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(got.output, ref.output);
}

TEST_P(ExecutionTest, PointerProgramMatchesReference)
{
    Module mod = makePointerProgram();
    IRRunResult ref = runReference(mod);
    OsRunResult got = runCompiled(mod, GetParam());
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(got.output, ref.output);
}

TEST_P(ExecutionTest, TlsHeapMatchesReference)
{
    Module mod = makeTlsHeapProgram();
    IRRunResult ref = runReference(mod);
    OsRunResult got = runCompiled(mod, GetParam());
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(got.output, ref.output);
}

TEST_P(ExecutionTest, DeepRecursionMatchesReference)
{
    Module mod = makeDeepRecursionProgram(50);
    IRRunResult ref = runReference(mod);
    OsRunResult got = runCompiled(mod, GetParam());
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(got.output, ref.output);
}

TEST_P(ExecutionTest, UnalignedBinariesAlsoExecuteCorrectly)
{
    Module mod = makeArithProgram(50);
    IRRunResult ref = runReference(mod);
    CompileOptions opts;
    opts.alignedLayout = false;
    OsRunResult got = runCompiled(mod, GetParam(), opts);
    EXPECT_EQ(got.exitCode, ref.retVal);
}

TEST_P(ExecutionTest, UninstrumentedBinariesAlsoExecuteCorrectly)
{
    Module mod = makeArithProgram(50);
    IRRunResult ref = runReference(mod);
    CompileOptions opts;
    opts.boundaryMigPoints = false;
    OsRunResult got = runCompiled(mod, GetParam(), opts);
    EXPECT_EQ(got.exitCode, ref.retVal);
}

INSTANTIATE_TEST_SUITE_P(BothStartNodes, ExecutionTest,
                         ::testing::Values(0, 1),
                         [](const auto &info) {
                             return info.param == 0
                                        ? std::string("xeno")
                                        : std::string("aether");
                         });

TEST(Execution, ThreadedSumIsCorrectOnBothIsas)
{
    // sum 0..99 = 4950 with 4 worker threads.
    Module mod = makeThreadedProgram(4, 100);
    for (int node : {0, 1}) {
        OsRunResult got = runCompiled(mod, node);
        EXPECT_EQ(got.exitCode, 4950) << "node " << node;
        ASSERT_EQ(got.output.size(), 1u);
        EXPECT_EQ(got.output[0], "4950");
    }
}

TEST(Execution, InstructionCountsDifferAcrossIsas)
{
    // Sanity: the two backends really generate different code.
    Module mod = makeArithProgram(100);
    OsRunResult a = runCompiled(mod, 0);
    OsRunResult b = runCompiled(mod, 1);
    EXPECT_NE(a.totalInstrs, b.totalInstrs);
}

} // namespace
} // namespace xisa
