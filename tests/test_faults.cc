/**
 * @file
 * Deterministic chaos suite for the fault-injection layer.
 *
 * Every scenario runs from a fixed seed, so a failure replays exactly.
 * Coverage: the FaultPlan decision stream itself, interconnect
 * retry/backoff accounting, hDSM convergence and MSI invariants under
 * drop/duplicate/partition storms, thread migration under message loss
 * (complete or cleanly abort with the thread runnable on the source),
 * scheduler crash/failover with exactly-once checkpoint restarts, and
 * the zero-fault bit-identity guarantee.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "check/audit.hh"
#include "check/perturb.hh"
#include "dsm/dsm.hh"
#include "dsm/faults.hh"
#include "ir/interp.hh"
#include "obs/registry.hh"
#include "os/os.hh"
#include "sched/cluster.hh"
#include "sched/jobsets.hh"
#include "sched/profile.hh"
#include "testprogs.hh"
#include "traffic/traffic.hh"
#include "util/rng.hh"

namespace xisa {
namespace {

constexpr uint64_t kBase = 0x10000000ull;
constexpr uint64_t kPageMsg = vm::kPageSize + 64; // page + header
constexpr uint64_t kDsmWords = 512;               // two pages

// --- FaultPlan -------------------------------------------------------

TEST(FaultPlan, DeterministicPerSeedAndConfig)
{
    FaultConfig cfg;
    cfg.seed = 0x7a57;
    cfg.dropProb = 0.2;
    cfg.dupProb = 0.1;
    cfg.spikeProb = 0.15;
    cfg.degradeFactor = 2.0;
    cfg.degradePeriodMsgs = 10;
    cfg.degradeLenMsgs = 3;
    FaultPlan a(cfg), b(cfg);
    bool sawDrop = false, sawDup = false, sawSpike = false,
         sawDegrade = false;
    for (int i = 0; i < 5000; ++i) {
        FaultDecision da = a.next(), db = b.next();
        ASSERT_EQ(da.delivered, db.delivered) << "msg " << i;
        ASSERT_EQ(da.duplicated, db.duplicated) << "msg " << i;
        ASSERT_EQ(da.partitioned, db.partitioned) << "msg " << i;
        ASSERT_DOUBLE_EQ(da.extraLatencySeconds, db.extraLatencySeconds);
        ASSERT_DOUBLE_EQ(da.bandwidthFactor, db.bandwidthFactor);
        sawDrop |= !da.delivered;
        sawDup |= da.duplicated;
        sawSpike |= da.extraLatencySeconds > 0;
        sawDegrade |= da.bandwidthFactor != 1.0;
    }
    EXPECT_TRUE(sawDrop);
    EXPECT_TRUE(sawDup);
    EXPECT_TRUE(sawSpike);
    EXPECT_TRUE(sawDegrade);
    // A different seed yields a different schedule.
    FaultConfig reseeded = cfg;
    reseeded.seed = 0x7a58;
    FaultPlan c(reseeded);
    FaultPlan a2(cfg);
    int differing = 0;
    for (int i = 0; i < 1000; ++i)
        if (c.next().delivered != a2.next().delivered)
            ++differing;
    EXPECT_GT(differing, 0);
}

TEST(FaultPlan, EmptyConfigInjectsNothing)
{
    FaultConfig cfg; // all defaults
    EXPECT_TRUE(cfg.empty());
    FaultPlan plan(cfg);
    EXPECT_TRUE(plan.empty());
    for (int i = 0; i < 100; ++i) {
        FaultDecision d = plan.next();
        EXPECT_TRUE(d.delivered);
        EXPECT_FALSE(d.duplicated);
        EXPECT_FALSE(d.partitioned);
        EXPECT_DOUBLE_EQ(d.extraLatencySeconds, 0.0);
        EXPECT_DOUBLE_EQ(d.bandwidthFactor, 1.0);
    }
    // A degrade factor with no window is still empty.
    FaultConfig noWin;
    noWin.degradeFactor = 4.0;
    EXPECT_TRUE(noWin.empty());
}

TEST(FaultPlan, PartitionWindowsMatchConfiguredDuty)
{
    FaultConfig cfg;
    cfg.partitionPeriodMsgs = 8;
    cfg.partitionLenMsgs = 2;
    FaultPlan plan(cfg);
    for (uint64_t i = 0; i < 64; ++i) {
        bool expectDown = i % 8 >= 6;
        FaultDecision d = plan.next();
        EXPECT_EQ(d.partitioned, expectDown) << "msg " << i;
        EXPECT_EQ(d.delivered, !expectDown) << "msg " << i;
    }
}

TEST(FaultPlan, LegacyPartitionFlagsNormalizeToWholeLinkCut)
{
    // The legacy partition_period/partition_len pair is sugar: the
    // constructor folds it into a whole-link cut-set (empty sideA),
    // so there is exactly one partition code path.
    FaultConfig legacy;
    legacy.partitionPeriodMsgs = 8;
    legacy.partitionLenMsgs = 2;
    FaultPlan plan(legacy);
    ASSERT_EQ(plan.config().cutSets.size(), 1u);
    EXPECT_TRUE(plan.config().cutSets[0].sideA.empty());
    EXPECT_EQ(plan.config().cutSets[0].periodMsgs, 8u);
    EXPECT_EQ(plan.config().cutSets[0].lenMsgs, 2u);
    EXPECT_EQ(plan.config().partitionPeriodMsgs, 0u);
    EXPECT_EQ(plan.config().partitionLenMsgs, 0u);

    // ... and the decision stream is identical to a directly
    // configured whole-link cut-set.
    FaultConfig direct;
    FaultCut whole;
    whole.periodMsgs = 8;
    whole.lenMsgs = 2;
    direct.cutSets.push_back(whole);
    FaultPlan a(legacy), b(direct);
    for (int i = 0; i < 256; ++i) {
        FaultDecision da = a.next(), db = b.next();
        ASSERT_EQ(da.partitioned, db.partitioned) << "msg " << i;
        ASSERT_EQ(da.sidedCut, db.sidedCut) << "msg " << i;
        EXPECT_FALSE(da.sidedCut); // whole-link cuts are not sided
    }
}

TEST(FaultPlan, SidedCutOnlySeversCrossPairs)
{
    FaultConfig cfg;
    FaultCut cut;
    cut.sideA = {0, 1};
    cut.periodMsgs = 4;
    cut.lenMsgs = 4; // always inside the window
    cfg.cutSets.push_back(cut);
    EXPECT_FALSE(cfg.empty());

    FaultPlan plan(cfg);
    // Crossing the cut: severed, and marked sided so the failure
    // detector clamps at Suspect instead of declaring death.
    FaultDecision cross = plan.nextBetween(0, 2);
    EXPECT_TRUE(cross.partitioned);
    EXPECT_TRUE(cross.sidedCut);
    EXPECT_FALSE(cross.delivered);
    // Same side: unaffected.
    FaultDecision same = plan.nextBetween(0, 1);
    EXPECT_TRUE(same.delivered);
    FaultDecision far = plan.nextBetween(2, 3);
    EXPECT_TRUE(far.delivered);
    // Unknown endpoints (legacy peer-less send) never cross a SIDED
    // cut -- only whole-link cuts sever anonymous traffic.
    FaultDecision anon = plan.next();
    EXPECT_TRUE(anon.delivered);
}

// --- Interconnect send/reliableSend ----------------------------------

TEST(FaultyInterconnect, PerfectLinkSendMatchesCharge)
{
    Interconnect faultAware; // empty plan
    Interconnect legacy;
    auto r = faultAware.send(5000, 2.0);
    EXPECT_EQ(r.status, SendStatus::Delivered);
    EXPECT_FALSE(r.duplicate);
    EXPECT_EQ(r.cycles, legacy.charge(5000, 2.0));
    EXPECT_DOUBLE_EQ(r.seconds, legacy.transferSeconds(5000));
    auto rr = faultAware.reliableSend(5000, 2.0);
    EXPECT_EQ(rr.attempts, 1);
    EXPECT_EQ(rr.cycles, legacy.charge(5000, 2.0));
    EXPECT_EQ(faultAware.messages(), 2u);
    EXPECT_EQ(faultAware.bytes(), 10000u);
}

TEST(FaultyInterconnect, ReliableSendChargesTimeoutAndBackoff)
{
    Interconnect::Config cfg;
    cfg.faults.scriptedDrops = {0, 1}; // first two attempts lost
    Interconnect net(cfg);
    obs::StatRegistry reg;
    net.registerStats(reg, "net");

    auto r = net.reliableSend(100, 1.0);
    EXPECT_EQ(r.attempts, 3);
    // Three wire attempts plus (timeout+5us) and (timeout+10us) waits.
    double wire = 3 * net.transferSeconds(100);
    double waits = (10.0 + 5.0) * 1e-6 + (10.0 + 10.0) * 1e-6;
    EXPECT_NEAR(r.seconds, wire + waits, 1e-12);
    EXPECT_EQ(reg.counterValue("net.messages"), 3u);
    EXPECT_EQ(reg.counterValue("net.bytes"), 300u);
    EXPECT_EQ(reg.counterValue("xfault.drops"), 2u);
    EXPECT_EQ(reg.counterValue("xfault.retries"), 2u);
    // At 1 GHz, backoff cycles are the waits in nanoseconds (same
    // truncation as the implementation's cycle conversion).
    EXPECT_EQ(reg.counterValue("xfault.backoff_cycles"),
              static_cast<uint64_t>(15.0 * 1e-6 * 1e9) +
                  static_cast<uint64_t>(20.0 * 1e-6 * 1e9));
}

// --- hDSM under faults -----------------------------------------------

/** Scripted drops pin the exact wire accounting of one retried page
 *  fault: no double-charging anywhere in the path (issue audit). */
TEST(FaultyDsm, ScriptedDropsPinRetryAccounting)
{
    Interconnect::Config cfg;
    cfg.faults.scriptedDrops = {0, 1};
    Interconnect net(cfg);
    obs::StatRegistry reg;
    net.registerStats(reg, "net");
    DsmSpace dsm(2, &net, {3.5, 2.4});
    dsm.registerStats(reg);

    uint64_t v = 0xabcdef;
    dsm.populate(0, kBase, &v, 8);
    uint64_t got = 0;
    uint64_t cyc = dsm.port(1).read(kBase, &got, 8);
    EXPECT_EQ(got, 0xabcdefu);
    EXPECT_GT(cyc, 0u);
    // One page fault, three wire attempts (two lost), one page moved.
    EXPECT_EQ(reg.counterValue("net.messages"), 3u);
    EXPECT_EQ(reg.counterValue("net.bytes"), 3 * kPageMsg);
    EXPECT_EQ(reg.counterValue("xfault.drops"), 2u);
    EXPECT_EQ(reg.counterValue("xfault.retries"), 2u);
    EXPECT_EQ(reg.counterValue("dsm.page_transfers"), 1u);
    EXPECT_EQ(reg.counterValue("dsm.bytes_transferred"), vm::kPageSize);
    EXPECT_EQ(dsm.state(0, kBase / vm::kPageSize), PageState::Shared);
    EXPECT_EQ(dsm.state(1, kBase / vm::kPageSize), PageState::Shared);
    dsm.checkInvariants();
}

/** Pins the RemoteAccess extra-cycles fix: a multi-page access must
 *  charge each page's message once, not re-add the running total. */
TEST(FaultyDsm, RemoteAccessExtraCyclesNoDoubleCharge)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {3.5, 2.4}, DsmMode::RemoteAccess);
    // Node 0 claims both pages as home.
    uint64_t v[2] = {0x1111, 0x2222};
    uint64_t straddle = kBase + vm::kPageSize - 4;
    dsm.port(0).write(straddle, v, 8);
    // Node 1 reads across the boundary: two remote messages.
    uint64_t got = 0;
    dsm.port(1).read(straddle, &got, 8);
    Interconnect ref;
    uint64_t expected = ref.charge(64 + 4, 2.4) + ref.charge(64 + 4, 2.4);
    EXPECT_EQ(dsm.stats().extraCycles, expected);
}

struct StormCase : ::testing::TestWithParam<int> {};

TEST_P(StormCase, DsmConvergesUnderDropStorm)
{
    Interconnect::Config cfg;
    cfg.faults.seed = 0xbead + static_cast<uint64_t>(GetParam());
    cfg.faults.dropProb = 0.2;
    cfg.faults.dupProb = 0.15;
    cfg.faults.spikeProb = 0.1;
    Interconnect net(cfg);
    obs::StatRegistry reg;
    net.registerStats(reg, "net");
    DsmSpace dsm(3, &net, {3.5, 2.4, 2.4});
    std::map<uint64_t, uint64_t> shadow;
    Rng rng(0x570 + static_cast<uint64_t>(GetParam()));
    for (int op = 0; op < 3000; ++op) {
        int node = static_cast<int>(rng.below(3));
        uint64_t addr = kBase + rng.below(kDsmWords) * 8;
        if (rng.below(2) == 0) {
            uint64_t v = rng.next();
            dsm.port(node).write(addr, &v, 8);
            shadow[addr] = v;
        } else {
            uint64_t got = 0;
            dsm.port(node).read(addr, &got, 8);
            auto it = shadow.find(addr);
            ASSERT_EQ(got, it == shadow.end() ? 0 : it->second)
                << "op " << op << " node " << node;
        }
        if (op % 500 == 0)
            dsm.checkInvariants();
    }
    dsm.checkInvariants();
    EXPECT_GT(reg.counterValue("xfault.drops"), 0u);
    EXPECT_GT(reg.counterValue("xfault.retries"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormCase, ::testing::Range(0, 6));

TEST(FaultyDsm, DuplicateDeliveryIsIdempotent)
{
    Interconnect::Config cfg;
    cfg.faults.seed = 0xd0b;
    cfg.faults.dupProb = 1.0; // every delivered message arrives twice
    Interconnect net(cfg);
    obs::StatRegistry reg;
    net.registerStats(reg, "net");
    DsmSpace dsm(2, &net, {3.5, 2.4});
    std::map<uint64_t, uint64_t> shadow;
    Rng rng(0xd0b);
    for (int op = 0; op < 2000; ++op) {
        int node = static_cast<int>(rng.below(2));
        uint64_t addr = kBase + rng.below(kDsmWords) * 8;
        if (rng.below(2) == 0) {
            uint64_t v = rng.next();
            dsm.port(node).write(addr, &v, 8);
            shadow[addr] = v;
        } else {
            uint64_t got = 0;
            dsm.port(node).read(addr, &got, 8);
            auto it = shadow.find(addr);
            ASSERT_EQ(got, it == shadow.end() ? 0 : it->second)
                << "op " << op;
        }
    }
    dsm.checkInvariants();
    EXPECT_GT(reg.counterValue("xfault.duplicates"), 0u);
    // Retransmissions are real wire traffic: strictly more bytes than
    // pages moved.
    EXPECT_GT(reg.counterValue("net.bytes"),
              reg.counterValue("dsm.bytes_transferred"));
}

TEST(FaultyDsm, SurvivesPartitionWindows)
{
    Interconnect::Config cfg;
    cfg.faults.partitionPeriodMsgs = 8;
    cfg.faults.partitionLenMsgs = 3;
    Interconnect net(cfg);
    obs::StatRegistry reg;
    net.registerStats(reg, "net");
    DsmSpace dsm(2, &net, {3.5, 2.4});
    std::map<uint64_t, uint64_t> shadow;
    Rng rng(0x9a9);
    for (int op = 0; op < 1500; ++op) {
        int node = static_cast<int>(rng.below(2));
        uint64_t addr = kBase + rng.below(kDsmWords) * 8;
        if (rng.below(2) == 0) {
            uint64_t v = rng.next();
            dsm.port(node).write(addr, &v, 8);
            shadow[addr] = v;
        } else {
            uint64_t got = 0;
            dsm.port(node).read(addr, &got, 8);
            auto it = shadow.find(addr);
            ASSERT_EQ(got, it == shadow.end() ? 0 : it->second)
                << "op " << op;
        }
    }
    dsm.checkInvariants();
    // Partition rejects cost latency but never count as wire traffic.
    EXPECT_GT(reg.counterValue("xfault.partition_rejects"), 0u);
    EXPECT_EQ(reg.counterValue("xfault.drops"), 0u);
}

// --- Migration under faults ------------------------------------------

TEST(FaultyMigration, UnderMessageLossMatchesReference)
{
    Module mod = testing::makeArithProgram(40);
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();
    MultiIsaBinary bin = compileModule(mod);

    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 1500;
    cfg.net.faults.seed = 0xc4a05;
    cfg.net.faults.dropProb = 0.3;
    cfg.net.faults.dupProb = 0.2;
    cfg.net.faults.spikeProb = 0.2;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.onQuantum = [](ReplicatedOS &self) {
        self.migrateProcess(1 - self.threadNode(0));
    };
    OsRunResult got = os.run();
    EXPECT_TRUE(got.finished);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_GE(os.migrations().size(), 2u);
    EXPECT_GT(os.statRegistry().counterValue("xfault.drops"), 0u);
    os.dsm().checkInvariants();
}

TEST(FaultyMigration, AbortLeavesThreadRunnableOnSource)
{
    Module mod = testing::makeArithProgram(12);
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();
    MultiIsaBinary bin = compileModule(mod);

    OsConfig cfg = OsConfig::dualServer();
    cfg.net.faults.dropProb = 1.0; // nothing ever gets through
    cfg.migrationRetryLimit = 3;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.migrateProcess(1);
    OsRunResult got = os.run();
    // The migration aborted cleanly: the thread finished on the source
    // node with the right answer, and was neither lost nor duplicated.
    EXPECT_TRUE(got.finished);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_TRUE(os.migrations().empty());
    EXPECT_EQ(os.threadNode(0), 0);
    EXPECT_EQ(os.statRegistry().counterValue("xfault.migration_aborts"),
              1u);
    EXPECT_EQ(
        os.statRegistry().counterValue("xfault.migration_retries"), 3u);
}

// --- Scheduler crash recovery ----------------------------------------

const JobProfileTable &
table()
{
    static JobProfileTable t = JobProfileTable::synthetic();
    return t;
}

TEST(ClusterFaults, CrashFailoverRestartsCheckpointedJobsExactlyOnce)
{
    auto jobs = makeSustainedSet(42);
    ClusterSim clean(makeHeterogeneousPool(true, 1.0), table());
    ClusterResult base = clean.run(jobs, Policy::DynamicBalanced);
    ASSERT_GT(base.makespan, 0.0);
    EXPECT_EQ(base.crashes, 0);
    EXPECT_TRUE(base.restartCounts.empty());

    ClusterSim::Config cc;
    cc.crashes = {CrashEvent{0.3 * base.makespan, 0, 15.0}};
    ClusterSim faulty(makeHeterogeneousPool(true, 1.0), table(), cc);
    ClusterResult r = faulty.run(jobs, Policy::DynamicBalanced);
    EXPECT_EQ(r.crashes, 1);
    ASSERT_FALSE(r.restartCounts.empty());
    for (const auto &kv : r.restartCounts)
        EXPECT_EQ(kv.second, 1) << "job " << kv.first;
    // Dynamic policy: every victim fails over to the surviving machine.
    EXPECT_EQ(r.failovers,
              static_cast<int>(r.restartCounts.size()));
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_GT(r.totalEnergy, 0.0);
}

TEST(ClusterFaults, StaticPolicyCrashRestartsOnRebootSameMachine)
{
    auto jobs = makeSustainedSet(43);
    ClusterSim clean(makeX86X86Pool(), table());
    ClusterResult base = clean.run(jobs, Policy::StaticBalanced);
    ASSERT_GT(base.makespan, 0.0);

    ClusterSim::Config cc;
    cc.crashes = {CrashEvent{0.4 * base.makespan, 0, 10.0}};
    // No checkpoint before the crash: victims restart from scratch, so
    // discarded progress must show up as lost work.
    cc.checkpointPeriod = 10 * base.makespan;
    ClusterSim faulty(makeX86X86Pool(), table(), cc);
    ClusterResult r = faulty.run(jobs, Policy::StaticBalanced);
    EXPECT_EQ(r.crashes, 1);
    EXPECT_EQ(r.failovers, 0); // static placements never move
    ASSERT_FALSE(r.restartCounts.empty());
    for (const auto &kv : r.restartCounts)
        EXPECT_EQ(kv.second, 1) << "job " << kv.first;
    EXPECT_GT(r.lostWorkSeconds, 0.0);
    EXPECT_GT(r.makespan, base.makespan);
}

TEST(ClusterFaults, ZeroFaultRunsAreBitIdentical)
{
    auto jobs = makeSustainedSet(44);
    ClusterSim a(makeHeterogeneousPool(true, 1.0), table());
    ClusterSim::Config cc;
    cc.checkpointPeriod = 0.25; // inert without crash events
    ClusterSim b(makeHeterogeneousPool(true, 1.0), table(), cc);
    for (Policy p : {Policy::StaticBalanced, Policy::DynamicBalanced,
                     Policy::DynamicUnbalanced}) {
        ClusterResult ra = a.run(jobs, p);
        ClusterResult rb = b.run(jobs, p);
        EXPECT_EQ(ra.totalEnergy, rb.totalEnergy) << policyName(p);
        EXPECT_EQ(ra.makespan, rb.makespan) << policyName(p);
        EXPECT_EQ(ra.edp, rb.edp) << policyName(p);
        EXPECT_EQ(ra.migrations, rb.migrations) << policyName(p);
        EXPECT_EQ(ra.avgTurnaround, rb.avgTurnaround) << policyName(p);
        EXPECT_EQ(rb.crashes, 0);
        EXPECT_EQ(rb.lostWorkSeconds, 0.0);
    }
}

// --- Checkpoint/restore recovery -------------------------------------

TEST(FaultyRecovery, CheckpointRestoreRecoversUnderFaultyLink)
{
    Module mod = testing::makeArithProgram(400);
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();
    MultiIsaBinary bin = compileModule(mod);
    OsConfig cleanCfg = OsConfig::dualServer();

    // Snapshot mid-run on a healthy container (the crashed machine's
    // last checkpoint)...
    std::vector<uint8_t> ckpt;
    {
        ReplicatedOS os(bin, cleanCfg);
        os.load(0);
        os.onQuantum = [&](ReplicatedOS &self) {
            if (ckpt.empty() && self.totalInstrs() >= 4000)
                ckpt = self.checkpoint();
        };
        os.run();
    }
    ASSERT_FALSE(ckpt.empty());

    // ... and resume it on a degraded fabric, migrating throughout.
    OsConfig faultyCfg = OsConfig::dualServer();
    faultyCfg.quantum = 2000;
    faultyCfg.net.faults.seed = 0x0c0ffee;
    faultyCfg.net.faults.dropProb = 0.25;
    faultyCfg.net.faults.dupProb = 0.2;
    ReplicatedOS resumed(bin, faultyCfg);
    resumed.restore(ckpt);
    ASSERT_FALSE(resumed.finished());
    resumed.onQuantum = [](ReplicatedOS &self) {
        self.migrateProcess(1 - self.threadNode(0));
    };
    OsRunResult res = resumed.run();
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.output, ref.output);
    EXPECT_EQ(res.exitCode, ref.retVal);
    resumed.dsm().checkInvariants();
}

// --- Circuit breaker (reliableSendTo) --------------------------------

TEST(CircuitBreaker, OpensAtThresholdAndFailsFast)
{
    Interconnect::Config cfg;
    cfg.faults.seed = 0xb4ea4;
    cfg.faults.dropProb = 1.0; // the link never heals
    cfg.retry.breakerThreshold = 3;
    Interconnect net(cfg);
    obs::StatRegistry reg;
    net.registerStats(reg, "net");

    Interconnect::ReliableResult first = net.reliableSendTo(1, 256, 1.0);
    EXPECT_FALSE(first.delivered);
    // Opened exactly at the threshold instead of burning the full
    // 64-attempt retry budget (and its panic).
    EXPECT_EQ(first.attempts, 3);
    EXPECT_TRUE(net.circuitOpen(1));
    EXPECT_EQ(reg.counterValue("xfault.circuit_open"), 1u);

    uint64_t failFast0 = reg.counterValue("xfault.circuit_fail_fast");
    for (int i = 0; i < 40; ++i)
        EXPECT_FALSE(net.reliableSendTo(1, 256, 1.0).delivered);
    // Most calls failed fast at latency-only cost; seeded half-open
    // probes kept re-testing the link without re-counting an open.
    EXPECT_GT(reg.counterValue("xfault.circuit_fail_fast"), failFast0);
    EXPECT_GT(reg.counterValue("xfault.circuit_probes"), 4u);
    EXPECT_EQ(reg.counterValue("xfault.circuit_open"), 1u);
    // Other peers are unaffected: each breaker is per-peer.
    EXPECT_FALSE(net.circuitOpen(2));
}

TEST(CircuitBreaker, DeliveredProbeClosesTheCircuit)
{
    Interconnect::Config cfg;
    cfg.faults.seed = 0x900d;
    cfg.faults.dropProb = 0.85; // lossy, but probes eventually land
    cfg.retry.breakerThreshold = 2;
    Interconnect net(cfg);

    bool sawOpen = false, sawClose = false;
    for (int i = 0; i < 400 && !(sawOpen && sawClose); ++i) {
        net.reliableSendTo(1, 64, 1.0);
        if (net.circuitOpen(1))
            sawOpen = true;
        else if (sawOpen)
            sawClose = true;
    }
    EXPECT_TRUE(sawOpen);
    EXPECT_TRUE(sawClose);
}

TEST(CircuitBreaker, DisabledPolicyIsByteIdenticalToLegacyPath)
{
    Interconnect::Config cfg;
    cfg.faults.seed = 0x1dea;
    cfg.faults.dropProb = 0.3;
    Interconnect a(cfg), b(cfg);
    for (int i = 0; i < 200; ++i) {
        Interconnect::ReliableResult ra = a.reliableSend(512, 2.0);
        Interconnect::ReliableResult rb = b.reliableSendTo(1, 512, 2.0);
        ASSERT_EQ(ra.attempts, rb.attempts) << "msg " << i;
        ASSERT_DOUBLE_EQ(ra.seconds, rb.seconds) << "msg " << i;
        ASSERT_EQ(ra.cycles, rb.cycles) << "msg " << i;
        ASSERT_EQ(ra.duplicate, rb.duplicate) << "msg " << i;
    }
    EXPECT_EQ(a.messages(), b.messages());
    EXPECT_EQ(a.bytes(), b.bytes());
}

// --- hDSM node-failure recovery (DESIGN.md section 9) ----------------

OsConfig
xenoPair()
{
    OsConfig cfg;
    cfg.nodes = {makeXenoServer(), makeXenoServer()};
    cfg.recovery.enabled = true;
    return cfg;
}

TEST(CrashRecovery, NodeCrashIsByteIdenticalToCrashFreeRun)
{
    Module mod = testing::makeThreadedProgram(4, 2000);
    MultiIsaBinary bin = compileModule(mod);

    // Crash-free reference: identical config and migration policy, no
    // scheduled crash. Acceptance is byte-identity against THIS run.
    auto migrateWorkers = [](ReplicatedOS &self) {
        if (self.dsm().nodeAlive(1))
            for (int tid = 1; tid < self.numThreads(); ++tid)
                self.migrateThread(tid, 1);
    };
    OsConfig refCfg = xenoPair();
    refCfg.quantum = 1200;
    ReplicatedOS refOs(bin, refCfg);
    refOs.load(0);
    refOs.onQuantum = migrateWorkers;
    OsRunResult ref = refOs.run();
    ASSERT_TRUE(ref.finished);

    OsConfig cfg = xenoPair();
    cfg.quantum = 1200;
    cfg.recovery.crashes = {PeerCrashEvent{1, 40}};
    ReplicatedOS os(bin, cfg);
    os.load(0);
    // Push the workers onto the doomed kernel so it dies holding
    // threads and sole-Modified pages.
    os.onQuantum = migrateWorkers;
    OsRunResult got = os.run();
    EXPECT_TRUE(got.finished);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.exitCode, ref.exitCode);
    obs::StatRegistry &reg = os.statRegistry();
    EXPECT_EQ(reg.counterValue("xfault.deaths"), 1u);
    // The dead kernel held real state: something had to be recovered.
    EXPECT_GE(reg.counterValue("xfault.threads_recovered") +
                  reg.counterValue("xfault.pages_recovered"),
              1u);
    // Degraded mode: every thread finished on the survivor.
    for (int tid = 0; tid < os.numThreads(); ++tid)
        EXPECT_EQ(os.threadNode(tid), 0) << "tid " << tid;
    os.dsm().checkInvariants();
}

TEST(CrashRecovery, SourceCrashBeforeShipRecoversThreadExactlyOnce)
{
    Module mod = testing::makeArithProgram(60);
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();
    MultiIsaBinary bin = compileModule(mod);

    OsConfig cfg = xenoPair();
    // The source node dies at its first context-ship attempt, before
    // the context reaches the wire.
    cfg.recovery.shipCrashes = {ShipCrashEvent{0, 0, false}};
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.migrateProcess(1);
    OsRunResult got = os.run();
    EXPECT_TRUE(got.finished);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.exitCode, ref.retVal);
    // The context never left the dying source: the thread was revived
    // from its committed at-trap snapshot on the survivor -- once.
    EXPECT_EQ(os.threadNode(0), 1);
    EXPECT_TRUE(os.migrations().empty());
    ASSERT_EQ(os.migrationLedger().size(), 1u);
    EXPECT_FALSE(os.migrationLedger()[0].applied);
    EXPECT_EQ(os.statRegistry().counterValue("xfault.deaths"), 1u);
    EXPECT_EQ(
        os.statRegistry().counterValue("xfault.threads_recovered"), 1u);
}

TEST(CrashRecovery, SourceCrashAfterDeliveryLeavesThreadOnDestOnly)
{
    Module mod = testing::makeArithProgram(60);
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();
    MultiIsaBinary bin = compileModule(mod);

    OsConfig cfg = xenoPair();
    // The source dies between state-ship and ack: the context was
    // already installed at the destination.
    cfg.recovery.shipCrashes = {ShipCrashEvent{0, 0, true}};
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.migrateProcess(1);
    OsRunResult got = os.run();
    EXPECT_TRUE(got.finished);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.exitCode, ref.retVal);
    // Exactly-once: the migration completed (thread on the dest), and
    // the crash did not re-create it on a survivor.
    EXPECT_EQ(os.threadNode(0), 1);
    EXPECT_EQ(os.migrations().size(), 1u);
    ASSERT_EQ(os.migrationLedger().size(), 1u);
    EXPECT_TRUE(os.migrationLedger()[0].applied);
    EXPECT_EQ(os.statRegistry().counterValue("xfault.deaths"), 1u);
    EXPECT_EQ(
        os.statRegistry().counterValue("xfault.threads_recovered"), 0u);
}

TEST(CrashRecovery, DestinationCrashMidHandoffKeepsThreadOnSource)
{
    Module mod = testing::makeArithProgram(400);
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();
    MultiIsaBinary bin = compileModule(mod);

    OsConfig cfg = xenoPair();
    cfg.quantum = 500;
    // The destination dies just as the handoff starts: every ship
    // attempt fails, the migration aborts, and heartbeats later declare
    // the death.
    cfg.recovery.shipCrashes = {ShipCrashEvent{1, 0, false}};
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.migrateProcess(1);
    OsRunResult got = os.run();
    EXPECT_TRUE(got.finished);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(os.threadNode(0), 0);
    EXPECT_TRUE(os.migrations().empty());
    ASSERT_EQ(os.migrationLedger().size(), 1u);
    EXPECT_FALSE(os.migrationLedger()[0].applied);
    EXPECT_EQ(
        os.statRegistry().counterValue("xfault.migration_aborts"), 1u);
    EXPECT_EQ(os.statRegistry().counterValue("xfault.deaths"), 1u);
}

TEST(CrashRecovery, PerturbedDeferredHandoffCrashKeepsThreadSingular)
{
    // The perturber defers migration traps and jitters the scheduled
    // ship-crash, exploring crash-vs-defer interleavings; the auditor
    // rides along. Whatever interleaving results, the run must stay
    // byte-identical and the thread must exist on exactly one kernel.
    setenv("XISA_PERTURB", "7", 1);
    setenv("XISA_AUDIT", "1", 1);
    Module mod = testing::makeArithProgram(80);
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();
    MultiIsaBinary bin = compileModule(mod);

    OsConfig cfg = xenoPair();
    cfg.quantum = 800;
    cfg.recovery.shipCrashes = {ShipCrashEvent{0, 1, true}};
    ReplicatedOS os(bin, cfg);
    unsetenv("XISA_PERTURB");
    unsetenv("XISA_AUDIT");
    os.load(0);
    os.migrateProcess(1);
    OsRunResult got = os.run();
    EXPECT_TRUE(got.finished);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.exitCode, ref.retVal);
    int where = os.threadNode(0);
    ASSERT_TRUE(where == 0 || where == 1);
    EXPECT_TRUE(os.dsm().nodeAlive(where));
    ASSERT_NE(os.auditor(), nullptr);
    EXPECT_GT(os.auditor()->checksRun(), 0u);
}

TEST(CrashRecovery, PerturbedDeferredHandoffDestCrashKeepsThreadSingular)
{
    // Same deferred-trap exploration, but the DESTINATION kernel dies
    // mid-handoff. The context must never land on a dead kernel: the
    // thread stays (or is recovered) on a live one, exactly once.
    setenv("XISA_PERTURB", "7", 1);
    setenv("XISA_AUDIT", "1", 1);
    Module mod = testing::makeArithProgram(80);
    IRRunResult ref = IRInterp(mod, 1ull << 33).runEntry();
    MultiIsaBinary bin = compileModule(mod);

    OsConfig cfg = xenoPair();
    cfg.quantum = 800;
    cfg.recovery.shipCrashes = {ShipCrashEvent{1, 1, true}};
    ReplicatedOS os(bin, cfg);
    unsetenv("XISA_PERTURB");
    unsetenv("XISA_AUDIT");
    os.load(0);
    os.migrateProcess(1);
    OsRunResult got = os.run();
    EXPECT_TRUE(got.finished);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_EQ(got.exitCode, ref.retVal);
    int where = os.threadNode(0);
    ASSERT_TRUE(where == 0 || where == 1);
    EXPECT_TRUE(os.dsm().nodeAlive(where));
    // Exactly-once: no ledger entry may sit applied at a dead
    // destination without being reconciled.
    for (const auto &rec : os.migrationLedger())
        if (rec.applied && !os.nodeAlive(rec.dest))
            EXPECT_TRUE(rec.destDied);
    ASSERT_NE(os.auditor(), nullptr);
    EXPECT_GT(os.auditor()->checksRun(), 0u);
}

TEST(CrashRecovery, PerturberInjectsSeededCrashOnlyWhenOptedIn)
{
    RecoveryConfig base;
    base.enabled = true;
    RecoveryConfig out =
        check::SchedulePerturber::perturbRecovery(base, {0, 1}, 42);
    ASSERT_EQ(out.crashes.size(), 1u);
    EXPECT_TRUE(out.crashes[0].node == 0 || out.crashes[0].node == 1);
    EXPECT_GE(out.crashes[0].atStep, 16u);
    RecoveryConfig again =
        check::SchedulePerturber::perturbRecovery(base, {0, 1}, 42);
    EXPECT_EQ(out.crashes[0].node, again.crashes[0].node);
    EXPECT_EQ(out.crashes[0].atStep, again.crashes[0].atStep);
    // A run that did not opt into crash tolerance is never perturbed
    // into one.
    RecoveryConfig off;
    RecoveryConfig kept =
        check::SchedulePerturber::perturbRecovery(off, {0, 1}, 42);
    EXPECT_FALSE(kept.enabled);
    EXPECT_TRUE(kept.crashes.empty());
}

TEST(CrashRecovery, DisabledRecoveryIsByteIdenticalToBaseline)
{
    Module mod = testing::makeArithProgram(40);
    MultiIsaBinary bin = compileModule(mod);
    OsConfig plain = OsConfig::dualServer();
    OsConfig armedOff = OsConfig::dualServer();
    armedOff.recovery = RecoveryConfig{}; // explicit: disabled
    ReplicatedOS a(bin, plain), b(bin, armedOff);
    a.load(0);
    b.load(0);
    a.onQuantum = [](ReplicatedOS &s) {
        s.migrateProcess(1 - s.threadNode(0));
    };
    b.onQuantum = [](ReplicatedOS &s) {
        s.migrateProcess(1 - s.threadNode(0));
    };
    OsRunResult ra = a.run(), rb = b.run();
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_EQ(ra.totalInstrs, rb.totalInstrs);
    EXPECT_EQ(ra.makespanSeconds, rb.makespanSeconds);
    EXPECT_EQ(a.migrations().size(), b.migrations().size());
}

// --- Serving chaos ---------------------------------------------------

/** The fixed-seed mid-traffic crash scenario: every shard sits on the
 *  xeno node, which dies 30% into the run. */
traffic::ServingResult
runServingCrash(obs::StatRegistry &reg)
{
    traffic::TrafficConfig tc;
    tc.seed = 11;
    tc.clients = 1000;
    tc.requestHz = 20.0;
    tc.durationSeconds = 0.5;
    tc.zipfSkew = 0.99;
    tc.keySpace = 4096;
    tc.getFraction = 0.9;
    tc.shards = 4;
    std::vector<traffic::Request> reqs = traffic::generateRequests(tc);

    traffic::ServingConfig sc;
    sc.nodes = {makeXenoServer(), makeAetherServer()};
    sc.placement = {0, 0, 0, 0};
    sc.sloUs = 800.0;
    sc.crashes = {{0, 0.15, 30.0}};
    traffic::ServingSim sim(sc, traffic::ServingProfile::synthetic(),
                            reg, "chaos");
    return sim.run(reqs);
}

TEST(ServingChaos, CrashMidTrafficFailsOverAndKeepsServing)
{
    obs::StatRegistry reg;
    traffic::ServingResult r = runServingCrash(reg);

    // Every shard failed over exactly once and the survivor carried
    // the rest of the stream; nothing finished on the dead node after
    // the crash.
    EXPECT_EQ(r.failovers, 4u);
    EXPECT_EQ(r.migrations, 0u);
    EXPECT_EQ(r.servedByNodeAfterCrash[0], 0u);
    EXPECT_GT(r.servedByNodeAfterCrash[1], 0u);
    EXPECT_EQ(r.servedByNode[0] + r.servedByNode[1], r.requests);

    // SLO-violation counters are monotone across the stream.
    for (size_t d = 1; d < r.violationsByDecile.size(); ++d)
        EXPECT_GE(r.violationsByDecile[d], r.violationsByDecile[d - 1]);
    EXPECT_EQ(r.violationsByDecile.back(), r.sloViolations);

    // Fixed-seed golden: the scenario is fully deterministic, so the
    // aggregate counts are pinned exactly. The violation burst sits in
    // the deciles spanning the crash (the failover outage plus the
    // cold-start tail on the survivor), and the stream is clean before
    // the crash and after the queues drain.
    EXPECT_EQ(r.requests, 9953u);
    EXPECT_EQ(r.gets, 8967u);
    EXPECT_EQ(r.sets, 986u);
    EXPECT_EQ(r.sloViolations, 1140u);
    EXPECT_EQ(r.servedByNodeAfterCrash[1], 6912u);
    EXPECT_EQ(r.violationsByDecile[2], 0u);
    EXPECT_EQ(r.violationsByDecile[3], 833u);
    EXPECT_EQ(r.violationsByDecile[4], 1140u);
    EXPECT_EQ(r.violationsByDecile[9], 1140u);
}

/** The fixed-seed ToR-outage scenario: 4 nodes in 2 racks, all shards
 *  on rack 0, whose switch dies 15% into the run and heals at 40%; a
 *  brownout window spanning the outage sheds the 3 coldest deciles. */
traffic::ServingConfig
torOutageConfig()
{
    traffic::ServingConfig sc;
    sc.nodes = {makeXenoServer(), makeXenoServer(), makeAetherServer(),
                makeAetherServer()};
    sc.nodeRack = {0, 0, 1, 1};
    sc.placement = {0, 1, 0, 1};
    sc.sloUs = 800.0;
    // The whole rack at one timestamp: a correlated ToR outage, not
    // two independent crashes.
    sc.crashes = {{0, 0.075, 0.125}, {1, 0.075, 0.125}};
    sc.brownouts = {{0.075, 0.2, 3}};
    return sc;
}

std::vector<traffic::Request>
torOutageStream()
{
    traffic::TrafficConfig tc;
    tc.seed = 11;
    tc.clients = 1000;
    tc.requestHz = 20.0;
    tc.durationSeconds = 0.5;
    tc.zipfSkew = 0.99;
    tc.keySpace = 4096;
    tc.getFraction = 0.9;
    tc.shards = 4;
    return traffic::generateRequests(tc);
}

TEST(ServingChaos, TorOutageFailsOverOutsideRackAndSheds)
{
    obs::StatRegistry reg;
    traffic::ServingSim sim(torOutageConfig(),
                            traffic::ServingProfile::synthetic(), reg,
                            "torchaos");
    traffic::ServingResult r = sim.run(torOutageStream());

    // Every shard failed over exactly once, and the failovers landed
    // OUTSIDE the dead rack: nothing was served by rack 0 after the
    // outage began, even though node 1 was just as dead as node 0 and
    // a rack-blind scan would have picked it for node 0's shards.
    EXPECT_EQ(r.failovers, 4u);
    EXPECT_EQ(r.servedByNodeAfterCrash[0], 0u);
    EXPECT_EQ(r.servedByNodeAfterCrash[1], 0u);
    EXPECT_GT(r.servedByNodeAfterCrash[2], 0u);

    // Survivors kept serving: the stream completes, with shed
    // requests accounted separately from served ones.
    EXPECT_EQ(r.shed + r.gets + r.sets, r.requests);
    EXPECT_GT(r.shed, 0u);
    EXPECT_EQ(reg.counterValue("torchaos.shed"), r.shed);
    EXPECT_EQ(reg.counterValue("torchaos.slo_violations_degraded"),
              r.violationsDegraded);

    // Degraded-window violations are a subset of the total.
    EXPECT_LE(r.violationsDegraded, r.sloViolations);
    EXPECT_GT(r.violationsDegraded, 0u);

    // Fixed-seed golden: exact counts, pinned so any change to the
    // failover policy, the shedding predicate, or the accounting
    // order is a conscious diff.
    EXPECT_EQ(r.requests, 9953u);
    EXPECT_EQ(r.shed, 95u);
    EXPECT_EQ(r.sloViolations, 1154u);
    EXPECT_EQ(r.violationsDegraded, 1153u);
    EXPECT_EQ(r.servedByNodeAfterCrash[2], 8365u);
}

TEST(ServingChaos, TorOutageRunBytesIdenticalAcrossWorkerCounts)
{
    traffic::ServingResult runs[2];
    const char *threads[2] = {"1", "5"};
    for (int i = 0; i < 2; ++i) {
        setenv("XISA_BENCH_THREADS", threads[i], 1);
        obs::StatRegistry reg;
        traffic::ServingSim sim(torOutageConfig(),
                                traffic::ServingProfile::synthetic(),
                                reg, "torchaos");
        runs[i] = sim.run(torOutageStream());
    }
    unsetenv("XISA_BENCH_THREADS");
    EXPECT_EQ(runs[0].shed, runs[1].shed);
    EXPECT_EQ(runs[0].sloViolations, runs[1].sloViolations);
    EXPECT_EQ(runs[0].violationsDegraded, runs[1].violationsDegraded);
    EXPECT_EQ(runs[0].p99Us, runs[1].p99Us);
    EXPECT_EQ(runs[0].maxUs, runs[1].maxUs);
    EXPECT_EQ(runs[0].servedByNode, runs[1].servedByNode);
    EXPECT_EQ(runs[0].servedByNodeAfterCrash,
              runs[1].servedByNodeAfterCrash);
    EXPECT_EQ(runs[0].violationsByDecile, runs[1].violationsByDecile);
}

TEST(ServingChaos, CrashRunBytesIdenticalAcrossWorkerCounts)
{
    std::string dumps[2];
    const char *threads[2] = {"1", "5"};
    for (int i = 0; i < 2; ++i) {
        setenv("XISA_BENCH_THREADS", threads[i], 1);
        obs::StatRegistry reg;
        runServingCrash(reg);
        std::ostringstream os;
        reg.dumpJson(os);
        dumps[i] = os.str();
    }
    unsetenv("XISA_BENCH_THREADS");
    EXPECT_EQ(dumps[0], dumps[1]);
}

} // namespace
} // namespace xisa
