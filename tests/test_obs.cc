/**
 * @file
 * Unit tests for the observability layer: StatRegistry lifecycle and
 * collision rules, histogram percentiles against the util/stats oracle,
 * epoch deltas, tracer span pairing and ring repair, the Chrome
 * trace-event JSON shape, and an end-to-end migration trace.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "testprogs.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace xisa {
namespace {

size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

/** Event phases in export order ('M', 'B', 'E', 'I', 'C'). */
std::vector<char>
phases(const std::string &json)
{
    std::vector<char> out;
    const std::string key = "\"ph\":\"";
    for (size_t pos = json.find(key); pos != std::string::npos;
         pos = json.find(key, pos + 1))
        out.push_back(json[pos + key.size()]);
    return out;
}

/** Structural sanity: quotes pair up and braces/brackets balance
 *  (outside of strings) -- catches malformed emission without a full
 *  JSON parser. */
void
expectBalancedJson(const std::string &s)
{
    int braces = 0, brackets = 0;
    bool inString = false;
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '{': ++braces; break;
          case '}': --braces; break;
          case '[': ++brackets; break;
          case ']': --brackets; break;
          default: break;
        }
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_FALSE(inString);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(StatRegistry, CounterGaugeBasics)
{
    obs::StatRegistry reg;
    obs::Counter c(reg, "mod.events");
    obs::Gauge g(reg, "mod.level");
    EXPECT_EQ(reg.size(), 2u);

    ++c;
    c.add(9);
    g.set(3.5);
    g.add(-1.0);
    EXPECT_EQ(c.value(), 10u);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    EXPECT_EQ(reg.counterValue("mod.events"), 10u);
    EXPECT_EQ(reg.find("mod.events"), &c);
    EXPECT_EQ(reg.find("no.such"), nullptr);

    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(StatRegistry, NameCollisionPanics)
{
    obs::StatRegistry reg;
    obs::Counter c(reg, "dup");
    try {
        obs::Counter clash(reg, "dup");
        FAIL() << "second attach under 'dup' must panic";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("already registered"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("collision"),
                  std::string::npos);
    }
}

TEST(StatRegistry, DoubleAttachPanics)
{
    obs::StatRegistry reg;
    obs::Counter c(reg, "once");
    try {
        reg.attach("twice", c);
        FAIL() << "re-attaching a live stat must panic";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("already registered"),
                  std::string::npos);
    }
}

TEST(StatRegistry, DetachOnDestructionFreesName)
{
    obs::StatRegistry reg;
    {
        obs::Counter c(reg, "scoped");
        EXPECT_EQ(reg.size(), 1u);
    }
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.find("scoped"), nullptr);
    obs::Counter again(reg, "scoped"); // name is free again
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistry, MovedStatStaysRegistered)
{
    // Components keep stats in growing vectors; a reallocation must
    // re-point the registry entry, not leave it dangling.
    obs::StatRegistry reg;
    std::vector<obs::Counter> v;
    v.reserve(1);
    v.emplace_back(reg, "vec.c0");
    v.emplace_back(reg, "vec.c1"); // forces reallocation of c0
    ++v[0];
    v[1].add(4);
    EXPECT_EQ(reg.find("vec.c0"), &v[0]);
    EXPECT_EQ(reg.find("vec.c1"), &v[1]);
    EXPECT_EQ(reg.counterValue("vec.c0"), 1u);
    EXPECT_EQ(reg.counterValue("vec.c1"), 4u);
}

TEST(StatRegistry, HistogramPercentilesMatchOracle)
{
    obs::StatRegistry reg;
    obs::Histogram h(reg, "lat.us");
    std::vector<double> samples;
    // Deterministic log-uniform samples over [1, 1e4): exercises many
    // powers of two, the regime bucketed histograms get wrong if the
    // sub-bucket math is off.
    uint64_t state = 0x243f6a8885a308d3ull;
    for (int i = 0; i < 10000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        double u = static_cast<double>(state >> 11) / 9007199254740992.0;
        double v = std::pow(10.0, 4.0 * u);
        samples.push_back(v);
        h.add(v);
    }

    BoxSummary box = boxSummary(samples);
    EXPECT_EQ(h.count(), box.count);
    EXPECT_DOUBLE_EQ(h.min(), box.min);
    EXPECT_DOUBLE_EQ(h.max(), box.max);
    // Bucketing bounds the relative error to ~1/kSubBuckets; allow 10%.
    EXPECT_NEAR(h.percentile(0.25), box.q1, 0.10 * box.q1);
    EXPECT_NEAR(h.percentile(0.50), box.median, 0.10 * box.median);
    EXPECT_NEAR(h.percentile(0.75), box.q3, 0.10 * box.q3);
    EXPECT_LE(h.percentile(0.0), h.percentile(1.0));
    EXPECT_GE(h.percentile(0.0), h.min());
    EXPECT_LE(h.percentile(1.0), h.max());

    double sum = 0;
    for (double v : samples)
        sum += v;
    EXPECT_NEAR(h.sum(), sum, 1e-6 * sum);
    EXPECT_NEAR(h.mean(), sum / samples.size(),
                1e-6 * (sum / samples.size()));
}

/** The histogram's nearest-rank convention, computed exactly from the
 *  raw samples: rank = ceil(q * n), 1-based into the sorted order. */
double
exactPercentile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    if (q <= 0.0)
        return samples.front();
    if (q >= 1.0)
        return samples.back();
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank < 1)
        rank = 1;
    return samples[rank - 1];
}

/** Feed `samples` to a histogram and check percentile(q) against the
 *  exact nearest-rank reference for the tail quantiles the serving
 *  report uses. Bucketing bounds the relative error by the bucket
 *  width: high/low <= (0.5 + 1/32)/0.5, so mid is within ~3.2% of any
 *  sample in the bucket. */
void
expectTailPercentilesExact(const std::vector<double> &samples,
                           const char *what)
{
    obs::StatRegistry reg;
    obs::Histogram h(reg, "h");
    for (double v : samples)
        h.add(v);
    for (double q : {0.5, 0.99, 0.999}) {
        double exact = exactPercentile(samples, q);
        EXPECT_NEAR(h.percentile(q), exact, 0.032 * exact)
            << what << " q=" << q;
    }
}

TEST(StatRegistry, HistogramExactPercentileSingleValue)
{
    // Degenerate distribution: every percentile must be EXACTLY the
    // value (the clamp to [min, max] collapses the bucket midpoint).
    obs::StatRegistry reg;
    obs::Histogram h(reg, "h");
    for (int i = 0; i < 1000; ++i)
        h.add(123.456);
    for (double q : {0.001, 0.5, 0.99, 0.999, 1.0})
        EXPECT_EQ(h.percentile(q), 123.456) << "q=" << q;
}

TEST(StatRegistry, HistogramExactPercentileBimodal)
{
    // 50/50 split across three decades: the even-count median must
    // take the LOWER mode (nearest-rank convention, rank n/2), and the
    // tail quantiles the upper one. An off-by-one in the cumulative
    // scan (seen > rank instead of seen >= rank) flips the median to
    // the wrong mode -- that is the bucket-boundary bias this pins.
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(1.0);
    for (int i = 0; i < 500; ++i)
        samples.push_back(1000.0);
    expectTailPercentilesExact(samples, "bimodal");

    obs::StatRegistry reg;
    obs::Histogram h(reg, "h");
    for (double v : samples)
        h.add(v);
    EXPECT_LT(h.percentile(0.5), 2.0);
    EXPECT_GT(h.percentile(0.51), 500.0);
}

TEST(StatRegistry, HistogramExactPercentileRareTail)
{
    // 990 fast + 10 slow requests: p99 sits exactly on the boundary
    // rank (ceil(0.99 * 1000) = 990, still the fast mode) and p99.9
    // inside the slow mode. This is the serving report's shape.
    std::vector<double> samples;
    for (int i = 0; i < 990; ++i)
        samples.push_back(100.0);
    for (int i = 0; i < 10; ++i)
        samples.push_back(50000.0);
    expectTailPercentilesExact(samples, "rare-tail");

    obs::StatRegistry reg;
    obs::Histogram h(reg, "h");
    for (double v : samples)
        h.add(v);
    EXPECT_LT(h.percentile(0.99), 200.0);
    EXPECT_GT(h.percentile(0.991), 10000.0);
}

TEST(StatRegistry, HistogramExactPercentilePowerLaw)
{
    // Pareto-ish tail (u^-1.5 over a seeded LCG) plus exact powers of
    // two salted in: samples landing exactly on bucket edges must not
    // shift the rank scan.
    std::vector<double> samples;
    uint64_t state = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 20000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        double u = (static_cast<double>(state >> 11) + 1.0) /
                   9007199254740993.0;
        samples.push_back(std::pow(u, -1.5));
    }
    for (int e = 0; e < 16; ++e)
        samples.push_back(static_cast<double>(1 << e));
    expectTailPercentilesExact(samples, "power-law");
}

TEST(StatRegistry, ScopedStatEpochReadsDeltas)
{
    obs::StatRegistry reg;
    obs::Counter c(reg, "e.count");
    obs::Gauge g(reg, "e.level");
    c.add(5);
    obs::ScopedStatEpoch epoch(reg);
    c.add(7);
    g.set(2.0);
    EXPECT_DOUBLE_EQ(epoch.delta("e.count"), 7.0);
    EXPECT_DOUBLE_EQ(epoch.delta("e.level"), 2.0);
    EXPECT_DOUBLE_EQ(epoch.delta("no.such"), 0.0);
    std::map<std::string, double> d = epoch.deltas();
    EXPECT_EQ(d.size(), 2u);
    epoch.rebase();
    EXPECT_DOUBLE_EQ(epoch.delta("e.count"), 0.0);
}

TEST(StatRegistry, DumpJsonIsWellFormed)
{
    obs::StatRegistry reg;
    obs::Counter c(reg, "a.count");
    obs::Gauge g(reg, "a.level");
    obs::Histogram h(reg, "a.hist");
    c.add(3);
    g.set(1.5);
    h.add(10);
    h.add(20);
    std::ostringstream os;
    reg.dumpJson(os);
    std::string s = os.str();
    expectBalancedJson(s);
    EXPECT_NE(s.find("\"a.count\""), std::string::npos);
    EXPECT_NE(s.find("\"a.level\""), std::string::npos);
    EXPECT_NE(s.find("\"a.hist\""), std::string::npos);
}

TEST(Tracer, GoldenChromeTraceJson)
{
    obs::Tracer &tr = obs::Tracer::global();
    tr.clear();
    tr.nameTrack(7, "tid7");
    tr.begin(7, "os", "quantum", 1e-6);
    tr.instant(7, "interp", "migpoint_hit", 2e-6);
    tr.end(7, 3e-6);
    tr.counter(7, "threads", 2, 4e-6);
    std::ostringstream os;
    tr.exportChromeTrace(os);
    tr.clear();

    // The 'E' inherits its 'B' labels at export so pairs are
    // self-describing in the viewer.
    const std::string golden =
        "{\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":0,\"tid\":7,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"tid7\"}},\n"
        "{\"ph\":\"B\",\"pid\":0,\"tid\":7,\"ts\":1.000,\"cat\":\"os\","
        "\"name\":\"quantum\"},\n"
        "{\"ph\":\"I\",\"pid\":0,\"tid\":7,\"ts\":2.000,"
        "\"cat\":\"interp\",\"name\":\"migpoint_hit\"},\n"
        "{\"ph\":\"E\",\"pid\":0,\"tid\":7,\"ts\":3.000,\"cat\":\"os\","
        "\"name\":\"quantum\"},\n"
        "{\"ph\":\"C\",\"pid\":0,\"tid\":7,\"ts\":4.000,"
        "\"name\":\"threads\",\"args\":{\"value\":2}}\n"
        "],\"displayTimeUnit\":\"ms\"}\n";
    EXPECT_EQ(os.str(), golden);
}

TEST(Tracer, NestedSpansStayBalanced)
{
    obs::Tracer &tr = obs::Tracer::global();
    tr.clear();
    tr.begin(3, "t", "outer", 1e-6);
    tr.begin(3, "t", "mid", 2e-6);
    tr.begin(3, "t", "inner", 3e-6);
    tr.end(3, 4e-6);
    tr.end(3, 5e-6);
    tr.instant(3, "t", "tick", 6e-6);
    tr.end(3, 7e-6);
    std::ostringstream os;
    tr.exportChromeTrace(os);
    tr.clear();
    std::string s = os.str();
    expectBalancedJson(s);

    int depth = 0;
    int begins = 0, ends = 0;
    for (char ph : phases(s)) {
        if (ph == 'B') {
            ++depth;
            ++begins;
        } else if (ph == 'E') {
            --depth;
            ++ends;
        }
        EXPECT_GE(depth, 0) << "'E' before its 'B' in export";
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(begins, 3);
    EXPECT_EQ(ends, 3);
}

TEST(Tracer, OpenSpanGetsSyntheticEndAtExport)
{
    obs::Tracer &tr = obs::Tracer::global();
    tr.clear();
    tr.begin(1, "t", "left_open", 1e-6);
    tr.instant(1, "t", "last", 2e-6);
    std::ostringstream os;
    tr.exportChromeTrace(os);
    tr.clear();
    std::string s = os.str();
    EXPECT_EQ(countOccurrences(s, "\"ph\":\"B\""), 1u);
    EXPECT_EQ(countOccurrences(s, "\"ph\":\"E\""), 1u);
    // The synthetic 'E' lands at the track's last timestamp.
    EXPECT_NE(s.find("\"ph\":\"E\",\"pid\":0,\"tid\":1,\"ts\":2.000"),
              std::string::npos);
}

TEST(Tracer, RingOverwriteDropsOrphanedEnd)
{
    obs::Tracer &tr = obs::Tracer::global();
    tr.clear();
    tr.setCapacityPerTrack(4);
    tr.begin(2, "t", "victim", 1e-6);
    tr.instant(2, "t", "a", 2e-6);
    tr.instant(2, "t", "b", 3e-6);
    tr.instant(2, "t", "c", 4e-6);
    tr.end(2, 5e-6); // overwrites the 'B' -- orphaned at export
    EXPECT_EQ(tr.dropped(), 1u);
    EXPECT_EQ(tr.size(), 4u);
    std::ostringstream os;
    tr.exportChromeTrace(os);
    tr.clear();
    tr.setCapacityPerTrack(1 << 16);
    std::string s = os.str();
    EXPECT_EQ(countOccurrences(s, "\"ph\":\"B\""), 0u);
    EXPECT_EQ(countOccurrences(s, "\"ph\":\"E\""), 0u);
    EXPECT_EQ(countOccurrences(s, "\"ph\":\"I\""), 3u);
    expectBalancedJson(s);
}

#if XISA_TRACE

TEST(ObsEndToEnd, MigrationTraceCoversSubsystems)
{
    obs::Tracer &tr = obs::Tracer::global();
    tr.clear();
    obs::setTraceEnabled(true);

    Module mod = testing::makeDeepRecursionProgram(25);
    IRRunResult ref = testing::runReference(mod);
    MultiIsaBinary bin = compileModule(mod);
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 150;
    ReplicatedOS os(bin, cfg);
    os.load(1);
    int quanta = 0;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (++quanta == 2)
            self.migrateProcess(0);
    };
    OsRunResult res = os.run();
    obs::setTraceEnabled(false);

    EXPECT_EQ(res.exitCode, ref.retVal);
    ASSERT_GE(os.migrations().size(), 1u);

    std::ostringstream json;
    tr.exportChromeTrace(json);
    tr.clear();
    std::string s = json.str();
    expectBalancedJson(s);
    // One coherent timeline across the layers the migration crossed.
    for (const char *cat :
         {"\"cat\":\"interp\"", "\"cat\":\"os.migrate\"",
          "\"cat\":\"stacktransform\"", "\"cat\":\"dsm\""})
        EXPECT_NE(s.find(cat), std::string::npos) << cat;
    EXPECT_EQ(countOccurrences(s, "\"ph\":\"B\""),
              countOccurrences(s, "\"ph\":\"E\""));

    // The container's registry spans all the instrumented namespaces.
    std::map<std::string, double> snap = os.statRegistry().snapshot();
    EXPECT_EQ(snap.count("machine.instrs"), 1u);
    EXPECT_EQ(snap.count("dsm.read_faults"), 1u);
    EXPECT_EQ(snap.count("stacktransform.transforms"), 1u);
    EXPECT_GE(snap["os.migrations"], 1.0);
    EXPECT_GE(snap["sched.migrate_requests"], 1.0);
    EXPECT_GT(snap["machine.instrs"], 0.0);
    EXPECT_GT(snap["dsm.page_transfers"], 0.0);
}

#endif // XISA_TRACE

} // namespace
} // namespace xisa
