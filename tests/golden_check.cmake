# Script-mode runner for the zero-fault golden guard.
#
#   cmake -DBENCH=<bench binary> -DGOLDEN=<recorded output>
#         -DOUT=<scratch file> -P golden_check.cmake
#
# Runs the bench in XISA_QUICK mode and fails unless its stdout is
# byte-identical to the golden recorded before the fault-injection layer
# existed -- the empty FaultPlan must add zero cost and zero behavior.
#
# Pass -DAUDIT=1 to run the same guard with the invariant auditor armed
# (XISA_AUDIT=1): the auditor, like the empty FaultPlan and the disarmed
# crash-tolerance layer, must never change a run.

foreach(var BENCH GOLDEN OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "golden_check.cmake: ${var} not set")
    endif()
endforeach()

set(run_env XISA_QUICK=1)
if(DEFINED AUDIT AND AUDIT)
    list(APPEND run_env XISA_AUDIT=1)
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${run_env} ${BENCH}
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "zero-fault output of ${BENCH} differs from golden "
            "${GOLDEN} (see ${OUT}); the empty FaultPlan must be "
            "bit-identical to the pre-fault-layer behavior")
endif()
