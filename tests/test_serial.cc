/**
 * @file
 * PadMig baseline tests: wire-format round trip, cost structure, and
 * state capture.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "os/os.hh"
#include "serial/padmig.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

TEST(PadMig, RoundTripPreservesEveryByte)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {3.5, 2.4});
    std::vector<uint8_t> pattern(3000);
    for (size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<uint8_t>(i * 7 + 3);
    uint64_t base = 0x10000000ull;
    dsm.populate(0, base, pattern.data(), pattern.size());

    SerializingMigrator mig(&net);
    SerializeResult res =
        mig.migrate(dsm, 0, 1, {{base, pattern.size()}},
                    makeXenoServer(), makeAetherServer());
    EXPECT_EQ(res.objects, 1u);
    EXPECT_GT(res.bytes, pattern.size());

    std::vector<uint8_t> back(pattern.size());
    dsm.port(1).read(base, back.data(),
                     static_cast<unsigned>(back.size()));
    EXPECT_EQ(back, pattern);
    // Destination now owns the pages.
    EXPECT_EQ(dsm.modifiedOwner(base / vm::kPageSize), 1);
}

TEST(PadMig, CostsScaleWithStateSize)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {3.5, 2.4});
    uint64_t base = 0x10000000ull;
    std::vector<uint8_t> big(1 << 20, 0xaa);
    dsm.populate(0, base, big.data(), big.size());

    SerializingMigrator mig(&net);
    SerializeResult small =
        mig.migrate(dsm, 0, 1, {{base, 4096}}, makeXenoServer(),
                    makeAetherServer());
    SerializeResult large =
        mig.migrate(dsm, 0, 1, {{base, big.size()}}, makeXenoServer(),
                    makeAetherServer());
    EXPECT_GT(large.totalSeconds(), 50 * small.totalSeconds());
    EXPECT_GT(large.serializeSeconds, 0.0);
    EXPECT_GT(large.deserializeSeconds, large.serializeSeconds)
        << "destination reflection+allocation costs more per word";
    EXPECT_GT(large.transferSeconds, 0.0);
}

TEST(PadMig, CaptureStateSeesGlobalsAndHeap)
{
    Module mod = buildWorkload(WorkloadId::REDIS, ProblemClass::A, 1);
    MultiIsaBinary bin = compileModule(std::move(mod));
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    os.run();
    std::vector<StateObject> objs = captureState(bin, os);
    ASSERT_FALSE(objs.empty());
    uint64_t total = 0;
    for (const StateObject &o : objs)
        total += o.bytes;
    // Redis tables: 2 x 16384 x 8 bytes of globals at minimum.
    EXPECT_GE(total, 2u * 16384 * 8);
}

TEST(PadMig, SerializationDwarfsNativeStackTransform)
{
    // The Fig. 11 contrast: whole-state serialization costs orders of
    // magnitude more time than transforming a stack.
    Module mod = buildWorkload(WorkloadId::IS, ProblemClass::B, 1);
    MultiIsaBinary bin = compileModule(std::move(mod));
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    // Run partway, then compare both migration mechanisms' costs.
    bool fired = false;
    double padmigSeconds = 0;
    double nativeSeconds = 0;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (fired || self.totalInstrs() < 400000)
            return;
        fired = true;
        SerializingMigrator mig(&self.net());
        SerializeResult sr =
            mig.migrate(self.dsm(), 0, 1, captureState(bin, self),
                        makeXenoServer(), makeAetherServer());
        padmigSeconds = sr.totalSeconds();
        self.migrateProcess(1);
    };
    os.run();
    ASSERT_TRUE(fired);
    ASSERT_EQ(os.migrations().size(), 1u);
    const MigrationEvent &ev = os.migrations()[0];
    nativeSeconds = ev.resumeTime - ev.trapTime;
    EXPECT_GT(padmigSeconds, 10 * nativeSeconds)
        << "padmig=" << padmigSeconds << " native=" << nativeSeconds;
}

} // namespace
} // namespace xisa
