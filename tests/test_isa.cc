/**
 * @file
 * Unit tests for isa/: ABI descriptors, encoding sizes, conditions,
 * disassembly.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/abi.hh"
#include "isa/isa.hh"
#include "util/logging.hh"

namespace xisa {
namespace {

TEST(IsaBasics, NamesAndPairing)
{
    EXPECT_STREQ(isaName(IsaId::Aether64), "aether64");
    EXPECT_STREQ(isaName(IsaId::Xeno64), "xeno64");
    EXPECT_EQ(otherIsa(IsaId::Aether64), IsaId::Xeno64);
    EXPECT_EQ(otherIsa(IsaId::Xeno64), IsaId::Aether64);
}

TEST(Conditions, NegationIsInvolutive)
{
    for (Cond c : {Cond::EQ, Cond::NE, Cond::LT, Cond::LE, Cond::GT,
                   Cond::GE, Cond::ULT, Cond::ULE, Cond::UGT, Cond::UGE})
        EXPECT_EQ(negateCond(negateCond(c)), c);
    EXPECT_THROW(negateCond(Cond::Always), PanicError);
}

class AbiTest : public ::testing::TestWithParam<IsaId> {};

TEST_P(AbiTest, RegisterIdsAreInRange)
{
    const AbiInfo &abi = AbiInfo::of(GetParam());
    EXPECT_GE(abi.spReg, 0);
    EXPECT_LT(abi.spReg, abi.numGpr);
    EXPECT_GE(abi.fpReg, 0);
    EXPECT_LT(abi.fpReg, abi.numGpr);
    for (int r : abi.intArgRegs)
        EXPECT_LT(r, abi.numGpr);
    for (int r : abi.calleeSavedGpr)
        EXPECT_LT(r, abi.numGpr);
    for (int r : abi.scratchGpr)
        EXPECT_LT(r, abi.numGpr);
    for (int r : abi.calleeSavedFpr)
        EXPECT_LT(r, abi.numFpr);
}

TEST_P(AbiTest, SpecialRegistersNotAllocatable)
{
    const AbiInfo &abi = AbiInfo::of(GetParam());
    std::set<int> special = {abi.spReg, abi.fpReg};
    if (abi.linkReg >= 0)
        special.insert(abi.linkReg);
    for (int r : abi.scratchGpr)
        EXPECT_FALSE(special.count(r)) << "scratch reg " << r;
    for (int r : abi.calleeSavedGpr)
        EXPECT_FALSE(special.count(r)) << "callee-saved reg " << r;
}

TEST_P(AbiTest, CalleeSavedAndScratchDisjoint)
{
    const AbiInfo &abi = AbiInfo::of(GetParam());
    std::set<int> saved(abi.calleeSavedGpr.begin(),
                        abi.calleeSavedGpr.end());
    for (int r : abi.scratchGpr)
        EXPECT_FALSE(saved.count(r)) << "reg " << r << " in both sets";
    for (int r : abi.intArgRegs)
        EXPECT_FALSE(saved.count(r)) << "arg reg " << r << " callee-saved";
}

TEST_P(AbiTest, FramePointerIsCalleeSaved)
{
    const AbiInfo &abi = AbiInfo::of(GetParam());
    EXPECT_TRUE(abi.isCalleeSavedGpr(abi.fpReg));
}

TEST_P(AbiTest, StackAlignmentIsSixteen)
{
    EXPECT_EQ(AbiInfo::of(GetParam()).stackAlign, 16);
}

INSTANTIATE_TEST_SUITE_P(BothIsas, AbiTest,
                         ::testing::Values(IsaId::Aether64, IsaId::Xeno64),
                         [](const auto &info) {
                             return std::string(isaName(info.param));
                         });

TEST(Abi, TheTwoAbisActuallyDiffer)
{
    // The whole point of the paper: the ABIs must differ in the
    // dimensions that make migration hard.
    const AbiInfo &a = AbiInfo::of(IsaId::Aether64);
    const AbiInfo &x = AbiInfo::of(IsaId::Xeno64);
    EXPECT_NE(a.numGpr, x.numGpr);
    EXPECT_NE(a.intArgRegs.size(), x.intArgRegs.size());
    EXPECT_NE(a.calleeSavedGpr.size(), x.calleeSavedGpr.size());
    EXPECT_NE(a.retAddrOnStack, x.retAddrOnStack);
    EXPECT_GE(a.linkReg, 0);
    EXPECT_LT(x.linkReg, 0);
    EXPECT_FALSE(a.calleeSavedFpr.empty());
    EXPECT_TRUE(x.calleeSavedFpr.empty());
}

TEST(Encoding, AetherIsFixedWidthMultipleOfFour)
{
    MachInstr in;
    for (int op = 0; op < static_cast<int>(MOp::NumOps); ++op) {
        in.op = static_cast<MOp>(op);
        in.imm = 12;
        uint8_t s = encodedSize(in, IsaId::Aether64);
        EXPECT_EQ(s % 4, 0) << mopName(in.op);
        EXPECT_GE(s, 4) << mopName(in.op);
    }
}

TEST(Encoding, AetherWideImmediatesCostMore)
{
    MachInstr in;
    in.op = MOp::MovImm;
    in.imm = 5;
    EXPECT_EQ(encodedSize(in, IsaId::Aether64), 4);
    in.imm = 0x12345;
    EXPECT_EQ(encodedSize(in, IsaId::Aether64), 8);
    in.imm = 0x123456789ll;
    EXPECT_EQ(encodedSize(in, IsaId::Aether64), 12);
    in.imm = 0x123456789abcdef0ll;
    EXPECT_EQ(encodedSize(in, IsaId::Aether64), 16);
    in.imm = -42; // small negatives encode with movn
    EXPECT_EQ(encodedSize(in, IsaId::Aether64), 4);
}

TEST(Encoding, XenoIsVariableWidth)
{
    MachInstr push;
    push.op = MOp::Push;
    push.rd = 3;
    EXPECT_EQ(encodedSize(push, IsaId::Xeno64), 1);
    push.rd = 12; // REX prefix
    EXPECT_EQ(encodedSize(push, IsaId::Xeno64), 2);

    MachInstr ret;
    ret.op = MOp::Ret;
    EXPECT_EQ(encodedSize(ret, IsaId::Xeno64), 1);

    MachInstr movabs;
    movabs.op = MOp::MovImm;
    movabs.rd = 0;
    movabs.imm = 0x123456789abcdef0ll;
    EXPECT_EQ(encodedSize(movabs, IsaId::Xeno64), 9);
}

TEST(Encoding, XenoDisplacementWidthMatters)
{
    MachInstr ldr;
    ldr.op = MOp::Ldr;
    ldr.rd = 0;
    ldr.rn = 5;
    ldr.imm = 0;
    uint8_t zero = encodedSize(ldr, IsaId::Xeno64);
    ldr.imm = 100;
    uint8_t byteDisp = encodedSize(ldr, IsaId::Xeno64);
    ldr.imm = 100000;
    uint8_t wordDisp = encodedSize(ldr, IsaId::Xeno64);
    EXPECT_LT(zero, byteDisp);
    EXPECT_LT(byteDisp, wordDisp);
}

TEST(Encoding, AllSizesWithinArchitecturalBounds)
{
    // Property sweep: every op, several immediates, both ISAs.
    for (int op = 0; op < static_cast<int>(MOp::NumOps); ++op) {
        for (int64_t imm : {0ll, 1ll, -1ll, 127ll, 1000ll, 1ll << 40}) {
            MachInstr in;
            in.op = static_cast<MOp>(op);
            in.imm = imm == 0 && (in.op == MOp::LdrIdx) ? 8 : imm;
            for (IsaId isa : {IsaId::Aether64, IsaId::Xeno64}) {
                uint8_t s = encodedSize(in, isa);
                EXPECT_GE(s, 1);
                EXPECT_LE(s, 16);
            }
        }
    }
}

TEST(Disasm, RendersRegistersWithAbiNames)
{
    MachInstr add;
    add.op = MOp::Add;
    add.rd = 3;
    add.rn = 4;
    add.rm = 5;
    EXPECT_EQ(disasm(add, IsaId::Aether64), "add x3, x4, x5");
    EXPECT_EQ(disasm(add, IsaId::Xeno64), "add bx, sp, bp");

    MachInstr ldr;
    ldr.op = MOp::Ldr;
    ldr.rd = 0;
    ldr.rn = 31;
    ldr.imm = 16;
    EXPECT_EQ(disasm(ldr, IsaId::Aether64), "ldr x0, [sp, #16]");
}

TEST(Disasm, EveryOpProducesText)
{
    for (int op = 0; op < static_cast<int>(MOp::NumOps); ++op) {
        MachInstr in;
        in.op = static_cast<MOp>(op);
        for (IsaId isa : {IsaId::Aether64, IsaId::Xeno64}) {
            std::string text = disasm(in, isa);
            EXPECT_FALSE(text.empty());
            EXPECT_NE(text, "?") << "op " << op;
        }
    }
}

} // namespace
} // namespace xisa
