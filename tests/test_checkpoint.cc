/**
 * @file
 * Container checkpoint/restore tests: mid-run snapshots resume exactly,
 * kernel service state (heap, barriers, blocked threads) survives, and
 * mismatched restores are rejected.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "ir/interp.hh"
#include "os/os.hh"
#include "util/logging.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

/** Run until ~instrs, checkpoint, and return (bytes, outputs so far). */
std::vector<uint8_t>
checkpointMidRun(const MultiIsaBinary &bin, const OsConfig &cfg,
                 uint64_t when)
{
    ReplicatedOS os(bin, cfg);
    os.load(0);
    std::vector<uint8_t> ckpt;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (ckpt.empty() && self.totalInstrs() >= when)
            ckpt = self.checkpoint();
    };
    os.run();
    return ckpt;
}

TEST(Checkpoint, MidRunRestoreResumesExactly)
{
    Module mod = buildWorkload(WorkloadId::REDIS, ProblemClass::A, 1);
    IRRunResult ref = IRInterp(mod, 1ull << 34).runEntry();
    MultiIsaBinary bin = compileModule(std::move(mod));
    OsConfig cfg = OsConfig::dualServer();

    std::vector<uint8_t> ckpt = checkpointMidRun(bin, cfg, 200000);
    ASSERT_FALSE(ckpt.empty());

    ReplicatedOS resumed(bin, cfg);
    resumed.restore(ckpt);
    ASSERT_FALSE(resumed.finished());
    OsRunResult res = resumed.run();
    EXPECT_EQ(res.output, ref.output);
    EXPECT_EQ(res.exitCode, ref.retVal);
}

TEST(Checkpoint, InstructionTotalsCarryAcrossRestore)
{
    MultiIsaBinary bin = compileModule(
        buildWorkload(WorkloadId::EP, ProblemClass::A, 1));
    OsConfig cfg = OsConfig::dualServer();
    OsRunResult straight;
    {
        ReplicatedOS os(bin, cfg);
        os.load(0);
        straight = os.run();
    }
    std::vector<uint8_t> ckpt = checkpointMidRun(bin, cfg, 300000);
    ReplicatedOS resumed(bin, cfg);
    resumed.restore(ckpt);
    OsRunResult res = resumed.run();
    EXPECT_EQ(res.totalInstrs, straight.totalInstrs);
    EXPECT_EQ(res.output, straight.output);
}

TEST(Checkpoint, MultithreadedBarriersAndBlockedThreadsSurvive)
{
    Module mod = buildWorkload(WorkloadId::CG, ProblemClass::A, 4);
    MultiIsaBinary bin = compileModule(std::move(mod));
    OsConfig cfg = OsConfig::dualServer();
    OsRunResult straight;
    {
        ReplicatedOS os(bin, cfg);
        os.load(0);
        straight = os.run();
    }
    // Checkpoint deep inside the barrier-heavy phase.
    std::vector<uint8_t> ckpt = checkpointMidRun(bin, cfg, 400000);
    ASSERT_FALSE(ckpt.empty());
    ReplicatedOS resumed(bin, cfg);
    resumed.restore(ckpt);
    OsRunResult res = resumed.run();
    EXPECT_EQ(res.output, straight.output);
}

TEST(Checkpoint, RestoredContainerCanStillMigrate)
{
    Module mod = buildWorkload(WorkloadId::IS, ProblemClass::A, 1);
    IRRunResult ref = IRInterp(mod, 1ull << 34).runEntry();
    MultiIsaBinary bin = compileModule(std::move(mod));
    OsConfig cfg = OsConfig::dualServer();
    std::vector<uint8_t> ckpt = checkpointMidRun(bin, cfg, 200000);
    ReplicatedOS resumed(bin, cfg);
    resumed.restore(ckpt);
    resumed.migrateProcess(1); // cross-ISA live migration after restore
    OsRunResult res = resumed.run();
    EXPECT_EQ(res.output, ref.output);
    EXPECT_GE(resumed.migrations().size(), 1u);
}

TEST(Checkpoint, RejectsMismatchedConfigurations)
{
    MultiIsaBinary bin = compileModule(
        buildWorkload(WorkloadId::EP, ProblemClass::A, 1));
    std::vector<uint8_t> ckpt =
        checkpointMidRun(bin, OsConfig::dualServer(), 100000);

    // Wrong node pool (single node).
    {
        OsConfig cfg;
        cfg.nodes = {makeXenoServer()};
        ReplicatedOS os(bin, cfg);
        EXPECT_THROW(os.restore(ckpt), FatalError);
    }
    // Wrong binary.
    {
        MultiIsaBinary other = compileModule(
            buildWorkload(WorkloadId::IS, ProblemClass::A, 1));
        ReplicatedOS os(other, OsConfig::dualServer());
        EXPECT_THROW(os.restore(ckpt), FatalError);
    }
    // Corrupt payload.
    {
        std::vector<uint8_t> bad = ckpt;
        bad.resize(bad.size() / 3);
        ReplicatedOS os(bin, OsConfig::dualServer());
        EXPECT_THROW(os.restore(bad), FatalError);
    }
    // Restore into a loaded container.
    {
        ReplicatedOS os(bin, OsConfig::dualServer());
        os.load(0);
        EXPECT_THROW(os.restore(ckpt), PanicError);
    }
}

TEST(Checkpoint, SizeReflectsTheEagerMemoryCopy)
{
    // The checkpoint carries the whole memory image -- the overhead the
    // paper's live migration avoids. IS class B touches ~1.5 MB.
    MultiIsaBinary bin = compileModule(
        buildWorkload(WorkloadId::IS, ProblemClass::B, 1));
    std::vector<uint8_t> ckpt =
        checkpointMidRun(bin, OsConfig::dualServer(), 2000000);
    EXPECT_GT(ckpt.size(), 1000u * 1000u);
}

} // namespace
} // namespace xisa
