/**
 * @file
 * Fast-path engine tests (DESIGN.md §7).
 *
 * Two families:
 *  - TLB coherence: the per-port software TLB must be invalidated on
 *    every event that changes a page's residency or rights -- hDSM page
 *    steal, invalidation, Modified->Shared downgrade, fault-induced
 *    protocol retries, thread migration -- and must never return bytes
 *    that disagree with the protocol's authoritative copy.
 *  - Differential: every observable of a run (program output, exit
 *    code, instruction count, simulated makespan, stat values, final
 *    memory image) must be identical between the fast path and the
 *    XISA_SLOW_PATH reference interpreter.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "compiler/compile.hh"
#include "dsm/dsm.hh"
#include "machine/interp_threaded.hh"
#include "machine/mem.hh"
#include "os/os.hh"
#include "util/rng.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

constexpr uint64_t kBase = 0x10000000ull;
constexpr uint64_t kPage = kBase / vm::kPageSize;

/** Scope that forces the reference (slow) paths for components
 *  constructed inside it; XISA_SLOW_PATH is sampled at construction. */
struct SlowPathGuard {
    SlowPathGuard() { setenv("XISA_SLOW_PATH", "1", 1); }
    ~SlowPathGuard() { unsetenv("XISA_SLOW_PATH"); }
};

// ---------------------------------------------------------------------
// TLB invalidation contract.
// ---------------------------------------------------------------------

struct TlbFixture : ::testing::Test {
    Interconnect net;
    DsmSpace dsm{2, &net, {3.5, 2.4}};
};

TEST_F(TlbFixture, LocalAccessInstallsBothTranslations)
{
    uint64_t v = 5;
    dsm.port(0).write(kBase, &v, 8);
    uint64_t got = 0;
    EXPECT_TRUE(dsm.port(0).tryRead(kBase, &got, 8));
    EXPECT_EQ(got, 5u);
    uint64_t w = 9;
    EXPECT_TRUE(dsm.port(0).tryWrite(kBase + 8, &w, 8));
    dsm.peek(kBase + 8, &got, 8);
    EXPECT_EQ(got, 9u) << "TLB store must hit the authoritative copy";
}

TEST_F(TlbFixture, PageStealDropsTheOldOwnersEntries)
{
    uint64_t v = 1;
    dsm.port(0).write(kBase, &v, 8); // node0 Modified, TLB hot
    uint64_t w = 2;
    dsm.port(1).write(kBase, &w, 8); // steal: node0 invalidated
    uint64_t got = 0;
    EXPECT_FALSE(dsm.port(0).tryRead(kBase, &got, 8))
        << "stale read translation after invalidation";
    EXPECT_FALSE(dsm.port(0).tryWrite(kBase, &v, 8))
        << "stale write translation after invalidation";
    // The slow path re-faults and sees node1's value.
    dsm.port(0).read(kBase, &got, 8);
    EXPECT_EQ(got, 2u);
}

TEST_F(TlbFixture, SharedReadDowngradesTheOwnersWriteEntry)
{
    uint64_t v = 3;
    dsm.port(0).write(kBase, &v, 8); // node0 Modified
    uint64_t got = 0;
    dsm.port(1).read(kBase, &got, 8); // both Shared now
    EXPECT_FALSE(dsm.port(0).tryWrite(kBase, &v, 8))
        << "write rights must expire on Modified->Shared";
    EXPECT_TRUE(dsm.port(0).tryRead(kBase, &got, 8))
        << "read translation stays valid while Shared";
    EXPECT_EQ(got, 3u);
}

TEST_F(TlbFixture, ReaderEntriesDropOnInvalidation)
{
    uint64_t v = 4;
    dsm.port(0).write(kBase, &v, 8);
    uint64_t got = 0;
    dsm.port(1).read(kBase, &got, 8); // node1 Shared, read TLB hot
    ASSERT_TRUE(dsm.port(1).tryRead(kBase, &got, 8));
    uint64_t w = 6;
    dsm.port(0).write(kBase, &w, 8); // invalidates node1's copy
    EXPECT_FALSE(dsm.port(1).tryRead(kBase, &got, 8))
        << "stale reader translation after invalidation";
    dsm.port(1).read(kBase, &got, 8);
    EXPECT_EQ(got, 6u);
}

TEST_F(TlbFixture, VdsoWritesAreNeverCached)
{
    dsm.broadcastWrite64(vm::kVdsoBase, 7);
    uint64_t got = 0;
    dsm.port(0).read(vm::kVdsoBase, &got, 8);
    uint64_t w = 8;
    EXPECT_FALSE(dsm.port(0).tryWrite(vm::kVdsoBase, &w, 8))
        << "user stores to the vDSO page must take the slow path";
}

TEST_F(TlbFixture, FlushTlbDropsEveryTranslation)
{
    uint64_t v = 1;
    dsm.port(0).write(kBase, &v, 8);
    dsm.port(0).write(kBase + vm::kPageSize, &v, 8);
    dsm.flushTlb(0);
    uint64_t got = 0;
    EXPECT_FALSE(dsm.port(0).tryRead(kBase, &got, 8));
    EXPECT_FALSE(dsm.port(0).tryRead(kBase + vm::kPageSize, &got, 8));
    EXPECT_FALSE(dsm.port(0).tryWrite(kBase, &v, 8));
}

TEST_F(TlbFixture, SlowPathModeNeverCaches)
{
    SlowPathGuard slow;
    Interconnect net2;
    DsmSpace ref(2, &net2, {3.5, 2.4});
    uint64_t v = 1, got = 0;
    ref.port(0).write(kBase, &v, 8);
    ref.port(0).read(kBase, &got, 8);
    EXPECT_FALSE(ref.port(0).tryRead(kBase, &got, 8));
    EXPECT_FALSE(ref.port(0).tryWrite(kBase, &v, 8));
}

TEST(TlbRemoteAccess, OnlyHomePagesAreCached)
{
    Interconnect net;
    DsmSpace dsm(2, &net, {3.5, 2.4}, DsmMode::RemoteAccess);
    uint64_t v = 11, got = 0;
    dsm.port(0).write(kBase, &v, 8); // node0 becomes home
    EXPECT_TRUE(dsm.port(0).tryRead(kBase, &got, 8));
    // Node1's accesses are remote: every one must pay the round trip,
    // so nothing may be cached on node1's port.
    dsm.port(1).read(kBase, &got, 8);
    EXPECT_EQ(got, 11u);
    EXPECT_FALSE(dsm.port(1).tryRead(kBase, &got, 8));
    EXPECT_FALSE(dsm.port(1).tryWrite(kBase, &v, 8));
}

TEST(TlbLocalPort, CachesAfterFirstTouch)
{
    SimMemory mem;
    LocalMemPort port(mem);
    uint64_t v = 21, got = 0;
    port.write(kBase, &v, 8);
    EXPECT_TRUE(port.tryRead(kBase, &got, 8));
    EXPECT_EQ(got, 21u);
    // Contract: dropping pages under the port requires a flush.
    mem.dropPage(kPage);
    port.tlbFlush();
    EXPECT_FALSE(port.tryRead(kBase, &got, 8));
}

/**
 * Under a lossy, duplicating link the protocol retries and replays
 * fault messages; whatever the schedule, a TLB hit must always agree
 * with the authoritative copy. Randomized: any divergence between a
 * cached translation and peek() is a missed invalidation.
 */
TEST(TlbFaultStorm, HitsAlwaysMatchAuthoritativeCopy)
{
    Interconnect::Config cfg;
    cfg.faults.seed = 0x71b;
    cfg.faults.dropProb = 0.2;
    cfg.faults.dupProb = 0.15;
    cfg.faults.spikeProb = 0.1;
    Interconnect net(cfg);
    DsmSpace dsm(3, &net, {3.5, 2.4, 2.4});
    constexpr uint64_t kWords = 512; // spans two pages
    Rng rng(0x7a11);
    for (int op = 0; op < 4000; ++op) {
        int node = static_cast<int>(rng.below(3));
        uint64_t addr = kBase + rng.below(kWords) * 8;
        if (rng.below(2) == 0) {
            uint64_t v = rng.next();
            dsm.port(node).write(addr, &v, 8);
        } else {
            uint64_t got = 0;
            dsm.port(node).read(addr, &got, 8);
        }
        // Probe every node's TLB at a random address; a hit must
        // return exactly what the protocol considers current.
        uint64_t probe = kBase + rng.below(kWords) * 8;
        for (int n = 0; n < 3; ++n) {
            uint64_t cached = 0;
            if (dsm.port(n).tryRead(probe, &cached, 8)) {
                uint64_t truth = 0;
                dsm.peek(probe, &truth, 8);
                ASSERT_EQ(cached, truth)
                    << "op " << op << " node " << n << " addr "
                    << std::hex << probe;
            }
        }
    }
    dsm.checkInvariants();
}

// ---------------------------------------------------------------------
// Differential: fast path vs XISA_SLOW_PATH reference.
// ---------------------------------------------------------------------

struct RunCapture {
    OsRunResult res;
    std::map<std::string, double> stats;
    std::map<uint64_t, std::vector<uint8_t>> image;
    size_t migrations = 0;
};

/** Run `bin` to completion, optionally under an adversarial ping-pong
 *  migration schedule, and capture every observable. Histogram stats
 *  compare by primary value (count), which is schedule-deterministic;
 *  full dumps are not comparable because stacktransform.host_us
 *  measures real host time. */
RunCapture
captureRun(const MultiIsaBinary &bin, bool pingPong, uint64_t quantum)
{
    OsConfig cfg = OsConfig::dualServer();
    if (pingPong)
        cfg.quantum = quantum;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    if (pingPong)
        os.onQuantum = [](ReplicatedOS &self) {
            self.migrateProcess(1 - self.threadNode(0));
        };
    RunCapture c;
    c.res = os.run();
    c.stats = os.statRegistry().snapshot();
    c.image = os.dsm().pageImage();
    c.migrations = os.migrations().size();
    return c;
}

void
expectIdentical(const RunCapture &fast, const RunCapture &slow,
                const char *what)
{
    EXPECT_EQ(fast.res.output, slow.res.output) << what;
    EXPECT_EQ(fast.res.exitCode, slow.res.exitCode) << what;
    EXPECT_EQ(fast.res.totalInstrs, slow.res.totalInstrs) << what;
    EXPECT_EQ(fast.res.makespanSeconds, slow.res.makespanSeconds)
        << what;
    EXPECT_EQ(fast.migrations, slow.migrations) << what;
    ASSERT_EQ(fast.image.size(), slow.image.size()) << what;
    EXPECT_TRUE(fast.image == slow.image)
        << what << ": final memory images differ";
    ASSERT_EQ(fast.stats.size(), slow.stats.size()) << what;
    for (const auto &[name, v] : slow.stats) {
        auto it = fast.stats.find(name);
        ASSERT_NE(it, fast.stats.end()) << what << ": " << name;
        // host_us histograms count real wall time per sample; the
        // primary value (sample count) is deterministic and compared,
        // which snapshot() already reduces to.
        EXPECT_EQ(it->second, v) << what << ": stat " << name;
    }
}

class WorkloadDifferential
    : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(WorkloadDifferential, FastPathMatchesReferenceExactly)
{
    Module mod = buildWorkload(GetParam(), ProblemClass::A, 2);
    MultiIsaBinary bin = compileModule(mod);
    for (bool pingPong : {false, true}) {
        RunCapture fast = captureRun(bin, pingPong, 2500);
        RunCapture slow;
        {
            SlowPathGuard guard;
            slow = captureRun(bin, pingPong, 2500);
        }
        expectIdentical(fast, slow,
                        pingPong ? "ping-pong migration" : "plain");
        if (pingPong)
            EXPECT_GE(fast.migrations, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadDifferential,
                         ::testing::Values(WorkloadId::CG,
                                           WorkloadId::IS,
                                           WorkloadId::EP));

// ---------------------------------------------------------------------
// Superblock threaded engine: the deopt contract (DESIGN.md §10).
//
// The engine retires straight-line code in compiled superblocks and
// materializes interpreter state only when it must hand off -- at a
// migration trap, on a software-TLB miss inside a block (shootdowns,
// page steals), or when the quantum runs dry mid-stream. These tests
// force each hand-off while a block is hot and require the run to stay
// observationally identical to the plain predecoded fast path
// (XISA_THREADED=0), while a boundary observer proves the deopt paths
// actually fired and that no block-local progress was lost.
// ---------------------------------------------------------------------

/** Scope that pins the plain predecoded fast path (no superblocks). */
struct NoThreadedGuard {
    NoThreadedGuard() { setenv("XISA_THREADED", "0", 1); }
    ~NoThreadedGuard() { unsetenv("XISA_THREADED"); }
};

/** Scope arming the schedule perturber for contained constructions. */
struct PerturbGuard {
    explicit PerturbGuard(const char *seed)
    {
        setenv("XISA_PERTURB", seed, 1);
    }
    ~PerturbGuard() { unsetenv("XISA_PERTURB"); }
};

/** Counts superblock-boundary events and re-checks the monotonicity
 *  contract the invariant auditor enforces in production: within one
 *  run() slice the live instruction count never decreases. */
struct CountingObserver final : SuperblockObserver {
    uint64_t enters = 0;
    uint64_t deopts = 0;
    uint64_t exits = 0;
    uint64_t watermark = 0;
    bool inSlice = false;
    bool monotone = true;

    void
    onSuperblock(Event ev, uint32_t, uint32_t, uint64_t now) override
    {
        if (ev == Event::Enter)
            ++enters;
        else if (ev == Event::Deopt)
            ++deopts;
        else
            ++exits;
        if (inSlice && now < watermark)
            monotone = false;
        watermark = now;
        inSlice = ev != Event::Exit;
    }
};

/** captureRun with a superblock observer installed on every node and a
 *  ping-pong migration schedule. */
RunCapture
captureObserved(const MultiIsaBinary &bin, uint64_t quantum,
                CountingObserver &obs)
{
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = quantum;
    ReplicatedOS os(bin, cfg);
    for (int n = 0; n < static_cast<int>(cfg.nodes.size()); ++n)
        os.interp(n).setSuperblockObserver(&obs);
    os.load(0);
    os.onQuantum = [](ReplicatedOS &self) {
        self.migrateProcess(1 - self.threadNode(0));
    };
    RunCapture c;
    c.res = os.run();
    c.stats = os.statRegistry().snapshot();
    c.image = os.dsm().pageImage();
    c.migrations = os.migrations().size();
    return c;
}

TEST(ThreadedDeopt, MigrationTrapMidBlockIsObservationallyInvisible)
{
    Module mod = buildWorkload(WorkloadId::CG, ProblemClass::A, 2);
    MultiIsaBinary bin = compileModule(mod);
    CountingObserver obs;
    RunCapture threaded = captureObserved(bin, 700, obs);
    RunCapture plain;
    {
        NoThreadedGuard guard;
        plain = captureRun(bin, true, 700);
    }
    expectIdentical(threaded, plain, "migration-trap deopt");
    EXPECT_GE(threaded.migrations, 1u)
        << "schedule never migrated; the test lost its trigger";
#if XISA_THREADED_CAPABLE
    EXPECT_GT(obs.enters, 0u) << "no superblock ever entered";
    EXPECT_GT(obs.deopts, 0u)
        << "quantum 700 never expired mid-block; deopt path untested";
    EXPECT_TRUE(obs.monotone)
        << "block-local progress lost or double-counted at a deopt";
#endif
}

TEST(ThreadedDeopt, TlbShootdownInsideBlockDeoptsAndRefaults)
{
    // Migration flushes the destination TLB and hDSM page steals shoot
    // down live translations; a threaded load/store whose inline probe
    // then misses must deopt to the reference step, re-fault the page,
    // and resume -- with bit-identical accounting to the fast path.
    Module mod = buildWorkload(WorkloadId::IS, ProblemClass::A, 2);
    MultiIsaBinary bin = compileModule(mod);
    CountingObserver obs;
    RunCapture threaded = captureObserved(bin, 900, obs);
    RunCapture plain;
    {
        NoThreadedGuard guard;
        plain = captureRun(bin, true, 900);
    }
    expectIdentical(threaded, plain, "TLB-shootdown deopt");
    auto inval = threaded.stats.find("dsm.invalidations");
    ASSERT_NE(inval, threaded.stats.end());
    EXPECT_GT(inval->second, 0.0)
        << "no shootdowns happened; the test lost its trigger";
#if XISA_THREADED_CAPABLE
    EXPECT_GT(obs.deopts, 0u)
        << "no mid-block hand-off ever fired under shootdown pressure";
    EXPECT_TRUE(obs.monotone);
#endif
}

TEST(ThreadedDeopt, PerturbedScheduleOverlayMatchesFastPath)
{
    // XISA_PERTURB jitters quantum boundaries and migration timing;
    // under the same seed the threaded engine and the plain fast path
    // must still agree on every observable.
    Module mod = buildWorkload(WorkloadId::CG, ProblemClass::A, 2);
    MultiIsaBinary bin = compileModule(mod);
    RunCapture threaded, plain;
    {
        PerturbGuard seed("20260809");
        threaded = captureRun(bin, true, 1100);
        NoThreadedGuard guard;
        plain = captureRun(bin, true, 1100);
    }
    expectIdentical(threaded, plain, "perturbed overlay");
}

} // namespace
} // namespace xisa
