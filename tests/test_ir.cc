/**
 * @file
 * Unit tests for ir/: builder, verifier, and the reference interpreter.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "ir/builder.hh"
#include "ir/interp.hh"
#include "ir/ir.hh"
#include "util/logging.hh"

namespace xisa {
namespace {

TEST(Types, SizesMatchBothRealIsas)
{
    EXPECT_EQ(typeSize(Type::I8), 1);
    EXPECT_EQ(typeSize(Type::I32), 4);
    EXPECT_EQ(typeSize(Type::I64), 8);
    EXPECT_EQ(typeSize(Type::F64), 8);
    EXPECT_EQ(typeSize(Type::Ptr), 8);
    EXPECT_EQ(typeSize(Type::Void), 0);
    EXPECT_EQ(typeAlign(Type::I32), 4);
    EXPECT_EQ(typeAlign(Type::Void), 1);
}

// --- Builder + verifier ---------------------------------------------------

TEST(Builder, BuildsAVerifiableModule)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId a = f.constInt(40);
    ValueId b = f.constInt(2);
    f.ret(f.add(a, b));
    Module mod = mb.finish();
    EXPECT_EQ(mod.entryFuncId, mod.findFunc("main"));
    EXPECT_EQ(mod.numUserFuncs(), 1u);
}

TEST(Builder, RejectsDuplicateFunctionNames)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::Void, {});
    f.ret();
    EXPECT_THROW(mb.defineFunc("main", Type::Void, {}), FatalError);
}

TEST(Builder, EmitAfterTerminatorPanics)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::Void, {});
    f.ret();
    EXPECT_THROW(f.constInt(1), PanicError);
}

TEST(Verifier, CatchesMissingTerminator)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.constInt(1); // no terminator
    EXPECT_THROW(mb.finish(), FatalError);
}

TEST(Verifier, CatchesBranchOutOfRange)
{
    Module mod;
    mod.name = "t";
    IRFunction f;
    f.name = "main";
    f.id = 0;
    f.retType = Type::Void;
    BasicBlock bb;
    IRInstr br;
    br.op = IROp::Br;
    br.target = 7; // no such block
    bb.instrs.push_back(br);
    f.blocks.push_back(bb);
    mod.functions.push_back(f);
    EXPECT_THROW(mod.verify(), FatalError);
}

TEST(Verifier, CatchesTypeMismatchInFloatOps)
{
    Module mod;
    mod.name = "t";
    IRFunction f;
    f.name = "main";
    f.id = 0;
    f.retType = Type::Void;
    f.vregTypes = {Type::I64, Type::F64, Type::F64};
    BasicBlock bb;
    IRInstr fa;
    fa.op = IROp::FAdd;
    fa.dst = 1;
    fa.a = 0; // I64 operand into FAdd
    fa.b = 2;
    bb.instrs.push_back(fa);
    IRInstr ret;
    ret.op = IROp::Ret;
    bb.instrs.push_back(ret);
    f.blocks.push_back(bb);
    mod.functions.push_back(f);
    EXPECT_THROW(mod.verify(), FatalError);
}

TEST(Verifier, CatchesCallArityMismatch)
{
    ModuleBuilder mb("t");
    FuncBuilder &g = mb.defineFunc("g", Type::I64, {Type::I64});
    g.ret(g.param(0));
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    // Hand-roll a bad call to bypass builder checks.
    IRInstr call;
    call.op = IROp::Call;
    call.funcId = mb.findFunc("g");
    call.dst = f.newReg(Type::I64);
    f.fn().blocks[f.currentBlock()].instrs.push_back(call);
    f.ret(call.dst);
    EXPECT_THROW(mb.finish(), FatalError);
}

// --- Reference interpreter ------------------------------------------------

TEST(IRInterp, ArithmeticAndReturn)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId x = f.constInt(6);
    ValueId y = f.constInt(7);
    f.ret(f.mul(x, y));
    Module mod = mb.finish();
    IRInterp interp(mod);
    EXPECT_EQ(interp.runEntry().retVal, 42);
}

TEST(IRInterp, LoopSumViaForHelper)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t slot = f.declareAlloca(8, 8, "acc");
    ValueId accAddr = f.allocaAddr(slot);
    f.store(Type::I64, accAddr, f.constInt(0));
    f.forLoopI(1, 101, [&](ValueId iv) {
        ValueId acc = f.load(Type::I64, accAddr);
        f.store(Type::I64, accAddr, f.add(acc, iv));
    });
    f.ret(f.load(Type::I64, accAddr));
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 5050);
}

TEST(IRInterp, RecursionFactorial)
{
    ModuleBuilder mb("t");
    FuncBuilder &fact = mb.defineFunc("fact", Type::I64, {Type::I64});
    {
        ValueId n = fact.param(0);
        ValueId isBase = fact.icmp(Cond::LE, n, fact.constInt(1));
        uint32_t baseB = fact.newBlock();
        uint32_t recB = fact.newBlock();
        fact.condBr(isBase, baseB, recB);
        fact.setBlock(baseB);
        fact.ret(fact.constInt(1));
        fact.setBlock(recB);
        ValueId nm1 = fact.sub(n, fact.constInt(1));
        ValueId sub = fact.call(mb.findFunc("fact"), {nm1});
        fact.ret(fact.mul(n, sub));
    }
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.ret(f.call(mb.findFunc("fact"), {f.constInt(10)}));
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 3628800);
}

TEST(IRInterp, GlobalsAndIndexedAccess)
{
    ModuleBuilder mb("t");
    uint32_t arr = mb.addGlobalI64s("arr", {10, 20, 30, 40});
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId base = f.globalAddr(arr);
    uint32_t slot = f.declareAlloca(8, 8, "sum");
    ValueId sumAddr = f.allocaAddr(slot);
    f.store(Type::I64, sumAddr, f.constInt(0));
    f.forLoopI(0, 4, [&](ValueId i) {
        ValueId v = f.loadIdx(Type::I64, base, i, 8);
        ValueId s = f.load(Type::I64, sumAddr);
        f.store(Type::I64, sumAddr, f.add(s, v));
        // Also scale each element in place: arr[i] *= 2.
        f.storeIdx(Type::I64, base, i, f.mulImm(v, 2), 8);
    });
    f.ret(f.load(Type::I64, sumAddr));
    Module mod = mb.finish();
    IRInterp interp(mod);
    EXPECT_EQ(interp.runEntry().retVal, 100);
    std::vector<uint8_t> bytes = interp.readGlobal(arr);
    int64_t first;
    std::memcpy(&first, bytes.data(), 8);
    EXPECT_EQ(first, 20);
}

TEST(IRInterp, FloatMathAndConversions)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId a = f.constFloat(2.5);
    ValueId b = f.constFloat(4.0);
    ValueId c = f.fmul(a, b);            // 10.0
    ValueId d = f.fdiv(c, f.constFloat(4.0)); // 2.5
    ValueId e = f.fadd(d, f.sitofp(f.constInt(7))); // 9.5
    f.ret(f.fptosi(e)); // truncates to 9
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 9);
}

TEST(IRInterp, BuiltinsPrintMallocMemset)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId buf = f.call(mb.builtin(Builtin::Malloc), {f.constInt(64)});
    f.callVoid(mb.builtin(Builtin::Memset),
               {buf, f.constInt(0xab), f.constInt(64)});
    ValueId v = f.load(Type::I8, buf, 63);
    f.callVoid(mb.builtin(Builtin::PrintI64), {v});
    f.callVoid(mb.builtin(Builtin::PrintF64), {f.constFloat(1.5)});
    f.ret(v);
    Module mod = mb.finish();
    IRRunResult r = IRInterp(mod).runEntry();
    EXPECT_EQ(r.retVal, 0xab);
    ASSERT_EQ(r.output.size(), 2u);
    EXPECT_EQ(r.output[0], "171");
    EXPECT_EQ(r.output[1], "1.5");
}

TEST(IRInterp, MemcpyBetweenGlobals)
{
    ModuleBuilder mb("t");
    uint32_t src = mb.addGlobalI64s("src", {1, 2, 3});
    uint32_t dst = mb.addGlobal("dst", 24);
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.builtin(Builtin::Memcpy),
               {f.globalAddr(dst), f.globalAddr(src), f.constInt(24)});
    f.ret(f.load(Type::I64, f.globalAddr(dst), 16));
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 3);
}

TEST(IRInterp, IndirectCallThroughFuncAddr)
{
    ModuleBuilder mb("t");
    FuncBuilder &g = mb.defineFunc("g", Type::I64, {Type::I64});
    g.ret(g.addImm(g.param(0), 100));
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId fp = f.funcAddr(mb.findFunc("g"));
    f.ret(f.callInd(Type::I64, fp, {f.constInt(11)}));
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 111);
}

TEST(IRInterp, TlsVariablesAreAddressable)
{
    ModuleBuilder mb("t");
    uint32_t tls = mb.addGlobal("counter", 8, 8, false, /*isTls=*/true);
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId addr = f.tlsAddr(tls);
    f.store(Type::I64, addr, f.constInt(77));
    f.ret(f.load(Type::I64, addr));
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 77);
}

TEST(IRInterp, AtomicAddReturnsOldValue)
{
    ModuleBuilder mb("t");
    uint32_t g = mb.addGlobalI64s("ctr", {5});
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId old = f.atomicAdd(f.globalAddr(g), f.constInt(3));
    ValueId now = f.load(Type::I64, f.globalAddr(g));
    f.ret(f.add(f.mulImm(old, 100), now)); // 5*100 + 8
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 508);
}

TEST(IRInterp, ExitBuiltinStopsExecution)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    f.callVoid(mb.builtin(Builtin::Exit), {f.constInt(42)});
    f.callVoid(mb.builtin(Builtin::PrintI64), {f.constInt(1)});
    f.ret(f.constInt(0));
    Module mod = mb.finish();
    IRRunResult r = IRInterp(mod).runEntry();
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 42);
    EXPECT_TRUE(r.output.empty()); // nothing printed after exit
}

TEST(IRInterp, InstructionBudgetCatchesInfiniteLoops)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::Void, {});
    uint32_t loop = f.newBlock();
    f.br(loop);
    f.setBlock(loop);
    f.constInt(0);
    f.br(loop);
    Module mod = mb.finish();
    IRInterp interp(mod, /*maxInstrs=*/10000);
    EXPECT_THROW(interp.runEntry(), FatalError);
}

TEST(IRInterp, IfThenElseHelper)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("pick", Type::I64, {Type::I64});
    uint32_t slot = f.declareAlloca(8, 8, "out");
    ValueId out = f.allocaAddr(slot);
    ValueId isNeg = f.icmp(Cond::LT, f.param(0), f.constInt(0));
    f.ifThenElse(
        isNeg, [&] { f.store(Type::I64, out, f.constInt(-1)); },
        [&] { f.store(Type::I64, out, f.constInt(1)); });
    f.ret(f.load(Type::I64, out));
    FuncBuilder &m = mb.defineFunc("main", Type::I64, {});
    ValueId a = m.call(mb.findFunc("pick"), {m.constInt(-5)});
    ValueId b = m.call(mb.findFunc("pick"), {m.constInt(5)});
    m.ret(m.sub(a, b)); // -1 - 1 = -2
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, -2);
}

TEST(IRInterp, WhileLoopHelper)
{
    // Collatz steps for n=27 is 111.
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t nSlot = f.declareAlloca(8, 8, "n");
    uint32_t cSlot = f.declareAlloca(8, 8, "c");
    ValueId n = f.allocaAddr(nSlot);
    ValueId c = f.allocaAddr(cSlot);
    f.store(Type::I64, n, f.constInt(27));
    f.store(Type::I64, c, f.constInt(0));
    f.whileLoop(
        [&] {
            return f.icmp(Cond::NE, f.load(Type::I64, n), f.constInt(1));
        },
        [&] {
            ValueId v = f.load(Type::I64, n);
            ValueId odd = f.band(v, f.constInt(1));
            f.ifThenElse(
                odd,
                [&] {
                    f.store(Type::I64, n,
                            f.addImm(f.mulImm(v, 3), 1));
                },
                [&] {
                    f.store(Type::I64, n, f.ashr(v, f.constInt(1)));
                });
            f.store(Type::I64, c,
                    f.addImm(f.load(Type::I64, c), 1));
        });
    f.ret(f.load(Type::I64, c));
    Module mod = mb.finish();
    EXPECT_EQ(IRInterp(mod).runEntry().retVal, 111);
}

TEST(IRInterp, LoopDepthTrackedForMigrationPass)
{
    ModuleBuilder mb("t");
    FuncBuilder &f = mb.defineFunc("main", Type::Void, {});
    int sawDepth2 = 0;
    f.forLoopI(0, 2, [&](ValueId) {
        f.forLoopI(0, 2, [&](ValueId) {
            sawDepth2 = f.fn().blocks[f.currentBlock()].loopDepth;
        });
    });
    f.ret();
    EXPECT_EQ(sawDepth2, 2);
    Module mod = mb.finish();
    EXPECT_EQ(mod.func(mod.entryFuncId).blocks[0].loopDepth, 0);
}

} // namespace
} // namespace xisa
