/**
 * @file
 * MiniC front-end tests: language features end-to-end (source ->
 * BIR -> both ISAs -> migration), plus diagnostics.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "frontend/minic.hh"
#include "ir/interp.hh"
#include "os/os.hh"
#include "util/logging.hh"

namespace xisa {
namespace {

IRRunResult
runRef(const std::string &src)
{
    Module mod = compileMiniC(src);
    return IRInterp(mod, 1ull << 33).runEntry();
}

OsRunResult
runMachine(const std::string &src, int node = 0, bool migrate = false)
{
    Module mod = compileMiniC(src);
    MultiIsaBinary bin = compileModule(std::move(mod));
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 400;
    ReplicatedOS os(bin, cfg);
    os.load(node);
    if (migrate) {
        os.onQuantum = [](ReplicatedOS &self) {
            self.migrateProcess(1 - self.threadNode(0));
        };
    }
    return os.run();
}

TEST(MiniC, FibonacciRecursion)
{
    const char *src = R"(
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        long main() {
            print_i64(fib(15));
            return fib(10);
        }
    )";
    IRRunResult r = runRef(src);
    EXPECT_EQ(r.retVal, 55);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], "610");
}

TEST(MiniC, LoopsBreakContinueAndCompoundAssign)
{
    const char *src = R"(
        long main() {
            long sum = 0;
            for (long i = 0; i < 100; i += 1) {
                if (i % 2 == 0) continue;
                if (i > 50) break;
                sum += i;
            }
            long j = 10;
            while (j) { sum -= 1; j = j - 1; }
            return sum;
        }
    )";
    // Odd numbers 1..49 sum to 625, minus 10.
    EXPECT_EQ(runRef(src).retVal, 615);
}

TEST(MiniC, PointersArraysAndAddressOf)
{
    const char *src = R"(
        void bump(long* p, long delta) { *p = *p + delta; }
        long main() {
            long x = 5;
            long buf[8];
            for (long i = 0; i < 8; i += 1) buf[i] = i * i;
            bump(&x, 100);
            bump(buf + 3, 1000);
            long* p = buf;
            return x + p[3] + buf[7];
        }
    )";
    EXPECT_EQ(runRef(src).retVal, 105 + 1009 + 49);
}

TEST(MiniC, GlobalsAndThreadLocals)
{
    const char *src = R"(
        long table[16];
        long counter;
        thread long mine;
        long main() {
            mine = 7;
            counter = 1;
            for (long i = 0; i < 16; i += 1) table[i] = i + mine;
            long s = 0;
            for (long i = 0; i < 16; i += 1) s += table[i];
            return s + counter;
        }
    )";
    EXPECT_EQ(runRef(src).retVal, 16 * 7 + 120 + 1);
}

TEST(MiniC, DoublesCastsAndMixedArithmetic)
{
    const char *src = R"(
        double avg(double a, double b) { return (a + b) / 2.0; }
        long main() {
            double x = avg(3.0, 4.0);     // 3.5
            double y = x * 2 + 1;         // 8.0 (int promoted)
            long t = (long)(y + 0.5);
            print_f64(y);
            return t + (long)avg(10.0, 20.0);
        }
    )";
    IRRunResult r = runRef(src);
    EXPECT_EQ(r.retVal, 8 + 15);
    EXPECT_EQ(r.output[0], "8");
}

TEST(MiniC, ShortCircuitEvaluation)
{
    const char *src = R"(
        long g;
        long touch() { g += 1; return 1; }
        long main() {
            g = 0;
            long a = 0 && touch();  // touch not called
            long b = 1 || touch();  // touch not called
            long c = 1 && touch();  // called once
            return g * 100 + a * 10 + b + c;
        }
    )";
    EXPECT_EQ(runRef(src).retVal, 100 + 0 + 1 + 1);
}

TEST(MiniC, HeapAndBuiltins)
{
    const char *src = R"(
        long main() {
            long* a = malloc(64);
            memset(a, 0, 64);
            for (long i = 0; i < 8; i += 1) a[i] = i * 3;
            long* b = malloc(64);
            memcpy(b, a, 64);
            long s = 0;
            for (long i = 0; i < 8; i += 1) s += b[i];
            free(a);
            free(b);
            return s;
        }
    )";
    EXPECT_EQ(runRef(src).retVal, 84);
}

TEST(MiniC, ThreadsAndBarriers)
{
    const char *src = R"(
        long partial[8];
        long nthreads;
        void worker(long t) {
            long s = 0;
            for (long i = t * 250; i < t * 250 + 250; i += 1) s += i;
            partial[t] = s;
            barrier_wait(1, nthreads + 1);
        }
        long main() {
            nthreads = 4;
            long tids[4];
            for (long t = 0; t < 4; t += 1)
                tids[t] = thread_spawn(worker, t);
            barrier_wait(1, nthreads + 1);
            for (long t = 0; t < 4; t += 1) thread_join(tids[t]);
            long total = 0;
            for (long t = 0; t < 4; t += 1) total += partial[t];
            return total;  // sum 0..999
        }
    )";
    OsRunResult r = runMachine(src);
    EXPECT_EQ(r.exitCode, 999 * 1000 / 2);
}

TEST(MiniC, CompiledOutputMatchesReferenceOnBothIsas)
{
    const char *src = R"(
        long collatz(long n) {
            long steps = 0;
            while (n != 1) {
                if (n & 1) { n = 3 * n + 1; } else { n = n / 2; }
                steps += 1;
            }
            return steps;
        }
        long main() {
            long best = 0;
            for (long i = 1; i < 200; i += 1) {
                long s = collatz(i);
                if (s > best) best = s;
            }
            print_i64(best);
            return best;
        }
    )";
    IRRunResult ref = runRef(src);
    for (int node : {0, 1}) {
        OsRunResult got = runMachine(src, node);
        EXPECT_EQ(got.exitCode, ref.retVal) << "node " << node;
        EXPECT_EQ(got.output, ref.output) << "node " << node;
    }
}

TEST(MiniC, ProgramsSurviveAdversarialMigration)
{
    const char *src = R"(
        long sieve[2048];
        long main() {
            long limit = 2048;
            for (long i = 0; i < limit; i += 1) sieve[i] = 1;
            sieve[0] = 0; sieve[1] = 0;
            for (long p = 2; p * p < limit; p += 1) {
                migrate_point();
                if (sieve[p]) {
                    for (long m = p * p; m < limit; m += p)
                        sieve[m] = 0;
                }
            }
            long count = 0;
            for (long i = 0; i < limit; i += 1) count += sieve[i];
            print_i64(count);
            return count;
        }
    )";
    IRRunResult ref = runRef(src);
    EXPECT_EQ(ref.retVal, 309); // primes below 2048
    OsRunResult got = runMachine(src, 0, /*migrate=*/true);
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(got.output, ref.output);
}

TEST(MiniC, DiagnosticsCarryLineAndColumn)
{
    try {
        compileMiniC("long main() {\n  return x;\n}");
        FAIL() << "expected a diagnostic";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("minic:2:"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("unknown identifier"),
                  std::string::npos);
    }
}

TEST(MiniC, RejectsBadPrograms)
{
    // Missing semicolon.
    EXPECT_THROW(compileMiniC("long main() { return 1 }"), FatalError);
    // Assignment to a temporary.
    EXPECT_THROW(compileMiniC("long main() { 1 + 2 = 3; return 0; }"),
                 FatalError);
    // Dereference of a non-pointer.
    EXPECT_THROW(
        compileMiniC("long main() { long x = 1; return *x; }"),
        FatalError);
    // break outside a loop.
    EXPECT_THROW(compileMiniC("long main() { break; return 0; }"),
                 FatalError);
    // Unknown function.
    EXPECT_THROW(compileMiniC("long main() { return nope(); }"),
                 FatalError);
    // Wrong arity.
    EXPECT_THROW(compileMiniC("long f(long a) { return a; }\n"
                              "long main() { return f(1, 2); }"),
                 FatalError);
    // No main.
    EXPECT_THROW(compileMiniC("long f() { return 1; }"), FatalError);
}

} // namespace
} // namespace xisa
