/**
 * @file
 * Workload tests: every kernel verifies, runs identically under the
 * reference IR interpreter and under compiled execution on both ISAs,
 * is deterministic across thread counts, and survives migration
 * mid-run with unchanged results.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "ir/interp.hh"
#include "os/os.hh"
#include "util/logging.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

OsRunResult
runOn(const Module &mod, int node)
{
    MultiIsaBinary bin = compileModule(mod);
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(node);
    return os.run();
}

class WorkloadTest : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(WorkloadTest, SerialMatchesReferenceOnBothIsas)
{
    Module mod = buildWorkload(GetParam(), ProblemClass::A, 1);
    IRInterp ref(mod, 1ull << 34);
    IRRunResult expect = ref.runEntry();
    ASSERT_FALSE(expect.output.empty());
    for (int node : {0, 1}) {
        OsRunResult got = runOn(mod, node);
        EXPECT_EQ(got.exitCode, expect.retVal)
            << workloadName(GetParam()) << " node " << node;
        EXPECT_EQ(got.output, expect.output)
            << workloadName(GetParam()) << " node " << node;
    }
}

TEST_P(WorkloadTest, SerialSurvivesMigrationMidRun)
{
    Module mod = buildWorkload(GetParam(), ProblemClass::A, 1);
    IRRunResult expect = IRInterp(mod, 1ull << 34).runEntry();
    MultiIsaBinary bin = compileModule(mod);
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    int fired = 0;
    os.onQuantum = [&](ReplicatedOS &self) {
        // Bounce the container between the servers a few times.
        if (self.totalInstrs() > static_cast<uint64_t>(fired + 1) *
                                     150000 &&
            fired < 3) {
            self.migrateProcess(1 - self.threadNode(0));
            ++fired;
        }
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.exitCode, expect.retVal) << workloadName(GetParam());
    EXPECT_EQ(got.output, expect.output) << workloadName(GetParam());
    EXPECT_GE(os.migrations().size(), 1u) << workloadName(GetParam());
    os.dsm().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, WorkloadTest, ::testing::ValuesIn(allWorkloads()),
    [](const auto &info) { return std::string(workloadName(info.param)); });

class ThreadedWorkloadTest : public ::testing::TestWithParam<WorkloadId>
{};

TEST_P(ThreadedWorkloadTest, ThreadCountDoesNotChangeResults)
{
    // The checksum printed by T=1 must match T=2 and T=4: reductions
    // are staged deterministically.
    Module serial = buildWorkload(GetParam(), ProblemClass::A, 1);
    IRRunResult expect = IRInterp(serial, 1ull << 34).runEntry();
    for (int threads : {2, 4}) {
        Module mod = buildWorkload(GetParam(), ProblemClass::A, threads);
        OsRunResult got = runOn(mod, 0);
        EXPECT_EQ(got.output, expect.output)
            << workloadName(GetParam()) << " T=" << threads;
    }
}

TEST_P(ThreadedWorkloadTest, ThreadedRunSurvivesProcessMigration)
{
    Module serial = buildWorkload(GetParam(), ProblemClass::A, 1);
    IRRunResult expect = IRInterp(serial, 1ull << 34).runEntry();
    Module mod = buildWorkload(GetParam(), ProblemClass::A, 4);
    MultiIsaBinary bin = compileModule(mod);
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(1);
    bool fired = false;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (!fired && self.totalInstrs() > 200000) {
            self.migrateProcess(0);
            fired = true;
        }
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.output, expect.output) << workloadName(GetParam());
    os.dsm().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    NpbKernels, ThreadedWorkloadTest,
    ::testing::ValuesIn(npbWorkloads()),
    [](const auto &info) { return std::string(workloadName(info.param)); });

TEST(Workloads, ClassesScaleTheWork)
{
    // Larger classes execute proportionally more instructions.
    Module a = buildWorkload(WorkloadId::IS, ProblemClass::A, 1);
    Module b = buildWorkload(WorkloadId::IS, ProblemClass::B, 1);
    IRRunResult ra = IRInterp(a, 1ull << 34).runEntry();
    IRRunResult rb = IRInterp(b, 1ull << 34).runEntry();
    EXPECT_GT(rb.instrCount, 3 * ra.instrCount);
    EXPECT_LT(rb.instrCount, 6 * ra.instrCount);
}

TEST(Workloads, IsSortProducesZeroViolations)
{
    Module mod = buildWorkload(WorkloadId::IS, ProblemClass::A, 1);
    IRRunResult r = IRInterp(mod, 1ull << 34).runEntry();
    EXPECT_EQ(r.retVal, 0); // violation count
    ASSERT_EQ(r.output.size(), 2u);
    EXPECT_EQ(r.output[0], "0");
}

TEST(Workloads, SerialOnlyKernelsRejectThreads)
{
    EXPECT_THROW(buildWorkload(WorkloadId::REDIS, ProblemClass::A, 2),
                 FatalError);
    EXPECT_THROW(buildWorkload(WorkloadId::BZIP, ProblemClass::A, 4),
                 FatalError);
    EXPECT_THROW(buildWorkload(WorkloadId::CG, ProblemClass::A, 99),
                 FatalError);
}

} // namespace
} // namespace xisa
