/**
 * @file
 * Cross-ISA migration tests: the semantic invariant (any migration
 * schedule preserves program results), stack-transformation internals,
 * migration of multithreaded containers, and the no-stop-the-world
 * property of hDSM.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hh"
#include "core/stacktransform.hh"
#include "testprogs.hh"
#include "util/logging.hh"

namespace xisa {
namespace {

using testing::makeArithProgram;
using testing::makeDeepRecursionProgram;
using testing::makeFloatProgram;
using testing::makePointerProgram;
using testing::makeThreadedProgram;
using testing::makeTlsHeapProgram;
using testing::runReference;

/** Run with a migration request fired once `when` quanta have passed.
 *  Uses a short quantum so even tiny programs see the request. */
OsRunResult
runWithOneMigration(const Module &mod, int startNode, int destNode,
                    int when, ReplicatedOS **keep = nullptr)
{
    static std::unique_ptr<ReplicatedOS> os; // kept alive for inspection
    MultiIsaBinary bin = compileModule(mod);
    static std::unique_ptr<MultiIsaBinary> binKeep;
    binKeep = std::make_unique<MultiIsaBinary>(std::move(bin));
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 150;
    os = std::make_unique<ReplicatedOS>(*binKeep, cfg);
    os->load(startNode);
    int quanta = 0;
    os->onQuantum = [&, destNode, when](ReplicatedOS &self) {
        if (++quanta == when)
            self.migrateProcess(destNode);
    };
    OsRunResult res = os->run();
    if (keep)
        *keep = os.get();
    return res;
}

class MigrationTest : public ::testing::TestWithParam<int> {};

TEST_P(MigrationTest, SingleMigrationPreservesResults)
{
    int start = GetParam();
    int dest = 1 - start;
    for (const Module &mod :
         {makeArithProgram(200), makePointerProgram(),
          makeTlsHeapProgram(), makeDeepRecursionProgram(30)}) {
        IRRunResult ref = runReference(mod);
        ReplicatedOS *os = nullptr;
        OsRunResult got = runWithOneMigration(mod, start, dest, 1, &os);
        EXPECT_EQ(got.exitCode, ref.retVal) << mod.name;
        EXPECT_EQ(got.output, ref.output) << mod.name;
        ASSERT_GE(os->migrations().size(), 1u) << mod.name;
        EXPECT_EQ(os->migrations()[0].fromNode, start);
        EXPECT_EQ(os->migrations()[0].toNode, dest);
        EXPECT_EQ(os->threadNode(0), dest) << mod.name;
        os->dsm().checkInvariants();
    }
}

TEST_P(MigrationTest, FloatStatePreservedAcrossMigration)
{
    Module mod = makeFloatProgram(512);
    IRRunResult ref = runReference(mod);
    ReplicatedOS *os = nullptr;
    OsRunResult got =
        runWithOneMigration(mod, GetParam(), 1 - GetParam(), 5, &os);
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(got.output, ref.output);
}

INSTANTIATE_TEST_SUITE_P(BothDirections, MigrationTest,
                         ::testing::Values(0, 1),
                         [](const auto &info) {
                             return info.param == 0
                                        ? std::string("x86toArm")
                                        : std::string("armToX86");
                         });

TEST(Migration, PingPongAdversarialScheduleStillCorrect)
{
    // Migrate the process back and forth on every quantum: the
    // strongest form of the semantic invariant.
    Module mod = makeArithProgram(300);
    IRRunResult ref = runReference(mod);
    MultiIsaBinary bin = compileModule(mod);
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    os.onQuantum = [](ReplicatedOS &self) {
        int cur = self.threadNode(0);
        self.migrateProcess(1 - cur);
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_EQ(got.output, ref.output);
    EXPECT_GE(os.migrations().size(), 4u);
    os.dsm().checkInvariants();
}

TEST(Migration, DeepStacksTransformEveryFrame)
{
    Module mod = makeDeepRecursionProgram(40);
    IRRunResult ref = runReference(mod);
    MultiIsaBinary bin = compileModule(mod);
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 300; // trap while still descending the recursion
    ReplicatedOS os(bin, cfg);
    os.load(0);
    uint64_t seen = 0;
    os.onQuantum = [&](ReplicatedOS &self) {
        // One migration, fired deep into the recursion.
        if (self.totalInstrs() > 900 && seen++ == 0)
            self.migrateProcess(1);
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.exitCode, ref.retVal);
    ASSERT_EQ(os.migrations().size(), 1u);
    const MigrationEvent &ev = os.migrations()[0];
    EXPECT_GT(ev.transform.frames, 5u);
    EXPECT_GT(ev.transform.liveValues, 0u);
    EXPECT_GT(ev.transform.bytesCopied,
              static_cast<uint64_t>(ev.transform.frames) * 16);
}

TEST(Migration, PointersIntoStackAreFixedUp)
{
    Module mod = makePointerProgram();
    IRRunResult ref = runReference(mod);
    // Try several migration instants to catch the pointer in flight.
    for (int when = 1; when <= 4; ++when) {
        ReplicatedOS *os = nullptr;
        OsRunResult got = runWithOneMigration(mod, 0, 1, when, &os);
        EXPECT_EQ(got.exitCode, ref.retVal) << "when=" << when;
        EXPECT_EQ(got.output, ref.output) << "when=" << when;
    }
}

TEST(Migration, MultithreadedContainerMigratesThreadByThread)
{
    Module mod = makeThreadedProgram(4, 4000);
    MultiIsaBinary bin = compileModule(mod);
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    bool requested = false;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (!requested && self.numThreads() == 5) {
            self.migrateProcess(1);
            requested = true;
        }
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.exitCode, 4000 * 3999 / 2);
    EXPECT_TRUE(requested);
    // Every thread that was alive migrated, each at its own point: no
    // stop-the-world.
    EXPECT_GE(os.migrations().size(), 2u);
    for (const MigrationEvent &ev : os.migrations()) {
        EXPECT_EQ(ev.toNode, 1);
        EXPECT_GE(ev.trapTime, ev.requestTime);
        EXPECT_GE(ev.resumeTime, ev.trapTime);
    }
    os.dsm().checkInvariants();
}

TEST(Migration, ResponseTimeAndTransformCostArePositive)
{
    Module mod = makeArithProgram(500);
    ReplicatedOS *os = nullptr;
    runWithOneMigration(mod, 0, 1, 2, &os);
    ASSERT_GE(os->migrations().size(), 1u);
    const MigrationEvent &ev = os->migrations()[0];
    EXPECT_GT(ev.transform.frames, 0u);
    EXPECT_GT(ev.resumeTime, ev.trapTime); // transfer takes time
    EXPECT_GE(ev.trapTime, ev.requestTime);
}

TEST(Migration, DsmMovesPagesOnDemandAfterMigration)
{
    Module mod = makeTlsHeapProgram();
    ReplicatedOS *os = nullptr;
    runWithOneMigration(mod, 0, 1, 2, &os);
    const DsmStats &stats = os->dsm().stats();
    EXPECT_GT(stats.pagesTransferred, 0u);
    EXPECT_GT(stats.bytesTransferred, 0u);
    os->dsm().checkInvariants();
}

TEST(Migration, SpuriousFlagWithoutTargetIsHarmless)
{
    // The vDSO flag can be up for another thread; a thread with no
    // pending target must sail through its migration points.
    Module mod = makeArithProgram(100);
    IRRunResult ref = runReference(mod);
    MultiIsaBinary bin = compileModule(mod);
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    os.onQuantum = [](ReplicatedOS &self) {
        // Request "migration" to the node it is already on.
        self.migrateThread(0, self.threadNode(0));
    };
    OsRunResult got = os.run();
    EXPECT_EQ(got.exitCode, ref.retVal);
    EXPECT_TRUE(os.migrations().empty());
}

TEST(Migration, TransformStatsRoundTripAcrossDirections)
{
    // A -> B then B -> A at the same logical point sees the same frame
    // count and live values (the metadata is symmetric).
    Module mod = makeDeepRecursionProgram(40);
    MultiIsaBinary bin = compileModule(mod);
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 200;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.onQuantum = [](ReplicatedOS &self) {
        int cur = self.threadNode(0);
        if (self.migrations().size() < 2)
            self.migrateProcess(1 - cur);
    };
    OsRunResult got = os.run();
    IRRunResult ref = runReference(mod);
    EXPECT_EQ(got.exitCode, ref.retVal);
    ASSERT_GE(os.migrations().size(), 2u);
}

} // namespace
} // namespace xisa
