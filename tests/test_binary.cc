/**
 * @file
 * Binary-container tests: save/load round trip (including execution of
 * a reloaded binary), corruption detection, and the objdump/IR-print
 * renderers.
 */

#include <gtest/gtest.h>

#include "binary/dump.hh"
#include "binary/serialize.hh"
#include "compiler/compile.hh"
#include "ir/print.hh"
#include "os/os.hh"
#include "util/logging.hh"
#include "workload/workloads.hh"

namespace xisa {
namespace {

MultiIsaBinary
sample()
{
    return compileModule(
        buildWorkload(WorkloadId::REDIS, ProblemClass::A, 1));
}

TEST(Serialize, RoundTripPreservesEverything)
{
    MultiIsaBinary a = sample();
    std::vector<uint8_t> bytes = saveBinary(a);
    EXPECT_GT(bytes.size(), 1000u);
    MultiIsaBinary b = loadBinary(bytes);

    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.alignedLayout, b.alignedLayout);
    EXPECT_EQ(a.ir.functions.size(), b.ir.functions.size());
    EXPECT_EQ(a.globalAddr, b.globalAddr);
    EXPECT_EQ(a.tlsOff, b.tlsOff);
    EXPECT_EQ(a.tlsInit, b.tlsInit);
    for (int i = 0; i < kNumIsas; ++i) {
        EXPECT_EQ(a.funcAddr[i], b.funcAddr[i]);
        EXPECT_EQ(a.textEnd[i], b.textEnd[i]);
        EXPECT_EQ(a.callSite[i].size(), b.callSite[i].size());
        ASSERT_EQ(a.image[i].size(), b.image[i].size());
        for (size_t fn = 0; fn < a.image[i].size(); ++fn) {
            EXPECT_EQ(a.image[i][fn].instrOff, b.image[i][fn].instrOff);
            EXPECT_EQ(a.image[i][fn].frame.frameSize,
                      b.image[i][fn].frame.frameSize);
            ASSERT_EQ(a.image[i][fn].code.size(),
                      b.image[i][fn].code.size());
            for (size_t k = 0; k < a.image[i][fn].code.size(); ++k) {
                const MachInstr &x = a.image[i][fn].code[k];
                const MachInstr &y = b.image[i][fn].code[k];
                EXPECT_EQ(x.op, y.op);
                EXPECT_EQ(x.imm, y.imm);
                EXPECT_EQ(x.rd, y.rd);
                EXPECT_EQ(x.target, y.target);
            }
        }
    }
}

TEST(Serialize, ReloadedBinaryExecutesIdentically)
{
    MultiIsaBinary a = sample();
    MultiIsaBinary b = loadBinary(saveBinary(a));
    OsRunResult ra, rb;
    {
        ReplicatedOS os(a, OsConfig::dualServer());
        os.load(0);
        ra = os.run();
    }
    {
        ReplicatedOS os(b, OsConfig::dualServer());
        os.load(0);
        rb = os.run();
    }
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_EQ(ra.totalInstrs, rb.totalInstrs);
    // A reloaded binary can still migrate (all metadata intact).
    {
        ReplicatedOS os(b, OsConfig::dualServer());
        os.load(0);
        bool fired = false;
        os.onQuantum = [&](ReplicatedOS &self) {
            if (!fired && self.totalInstrs() > 50000) {
                self.migrateProcess(1);
                fired = true;
            }
        };
        OsRunResult rc = os.run();
        EXPECT_EQ(rc.output, ra.output);
        EXPECT_GE(os.migrations().size(), 1u);
    }
}

TEST(Serialize, FileRoundTrip)
{
    MultiIsaBinary a = sample();
    std::string path = ::testing::TempDir() + "/crossbound_test.xbin";
    saveBinaryFile(a, path);
    MultiIsaBinary b = loadBinaryFile(path);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(saveBinary(a), saveBinary(b));
    std::remove(path.c_str());
}

TEST(Serialize, DetectsCorruption)
{
    std::vector<uint8_t> bytes = saveBinary(sample());
    // Bad magic.
    {
        std::vector<uint8_t> bad = bytes;
        bad[0] ^= 0xff;
        EXPECT_THROW(loadBinary(bad), FatalError);
    }
    // Truncation.
    {
        std::vector<uint8_t> bad(bytes.begin(),
                                 bytes.begin() +
                                     static_cast<ptrdiff_t>(
                                         bytes.size() / 2));
        EXPECT_THROW(loadBinary(bad), FatalError);
    }
    // Trailing garbage.
    {
        std::vector<uint8_t> bad = bytes;
        bad.push_back(0);
        EXPECT_THROW(loadBinary(bad), FatalError);
    }
}

TEST(Dump, HeadersShowAlignedSymbols)
{
    MultiIsaBinary bin = sample();
    std::string text = dumpHeaders(bin);
    EXPECT_NE(text.find("aligned layout"), std::string::npos);
    EXPECT_NE(text.find("main"), std::string::npos);
    EXPECT_NE(text.find("tkeys"), std::string::npos);
}

TEST(Dump, FunctionDisassemblyDiffersPerIsa)
{
    MultiIsaBinary bin = sample();
    uint32_t mainId = bin.ir.findFunc("main");
    std::string arm = dumpFunction(bin, mainId, IsaId::Aether64);
    std::string x86 = dumpFunction(bin, mainId, IsaId::Xeno64);
    EXPECT_NE(arm, x86);
    EXPECT_NE(arm.find("aether64"), std::string::npos);
    EXPECT_NE(x86.find("push bp"), std::string::npos);
    EXPECT_NE(arm.find("sp, sp"), std::string::npos);
}

TEST(Dump, CallSiteShowsBothIsas)
{
    MultiIsaBinary bin = sample();
    uint32_t migSite = 0;
    for (const auto &[id, site] : bin.callSite[0])
        if (site.isMigrationPoint && !site.live.empty())
            migSite = id;
    ASSERT_NE(migSite, 0u);
    std::string text = dumpCallSite(bin, migSite);
    EXPECT_NE(text.find("migration point"), std::string::npos);
    EXPECT_NE(text.find("[aether64]"), std::string::npos);
    EXPECT_NE(text.find("[xeno64]"), std::string::npos);
    EXPECT_NE(text.find("live %"), std::string::npos);
}

TEST(IrPrint, RendersFunctionsAndInstructions)
{
    Module mod = buildWorkload(WorkloadId::CG, ProblemClass::A, 1);
    std::string text = printModule(mod);
    EXPECT_NE(text.find("module cg"), std::string::npos);
    EXPECT_NE(text.find("func @f"), std::string::npos);
    EXPECT_NE(text.find("cg_worker"), std::string::npos);
    EXPECT_NE(text.find("loop depth"), std::string::npos);
    EXPECT_NE(text.find("fmul"), std::string::npos);
    EXPECT_NE(text.find("cond_br"), std::string::npos);
    // Every non-builtin function prints with its vreg count.
    for (const IRFunction &f : mod.functions)
        if (!f.isBuiltin())
            EXPECT_NE(text.find(f.name), std::string::npos) << f.name;
}

} // namespace
} // namespace xisa
