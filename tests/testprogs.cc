#include "testprogs.hh"

namespace xisa::testing {

Module
makeArithProgram(int64_t n)
{
    ModuleBuilder mb("arith");

    FuncBuilder &gcd = mb.defineFunc("gcd", Type::I64,
                                     {Type::I64, Type::I64});
    {
        ValueId a = gcd.param(0);
        ValueId b = gcd.param(1);
        ValueId bZero = gcd.icmp(Cond::EQ, b, gcd.constInt(0));
        uint32_t baseB = gcd.newBlock();
        uint32_t recB = gcd.newBlock();
        gcd.condBr(bZero, baseB, recB);
        gcd.setBlock(baseB);
        gcd.ret(a);
        gcd.setBlock(recB);
        ValueId rem = gcd.srem(a, b);
        gcd.ret(gcd.call(mb.findFunc("gcd"), {b, rem}));
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t accSlot = f.declareAlloca(8, 8, "acc");
    ValueId acc = f.allocaAddr(accSlot);
    f.store(Type::I64, acc, f.constInt(0));
    f.forLoopI(0, n, [&](ValueId i) {
        ValueId sq = f.mul(i, i);
        f.store(Type::I64, acc, f.add(f.load(Type::I64, acc), sq));
    });
    ValueId sum = f.load(Type::I64, acc);
    f.callVoid(mb.builtin(Builtin::PrintI64), {sum});
    ValueId g = f.call(mb.findFunc("gcd"), {f.constInt(252), sum});
    f.callVoid(mb.builtin(Builtin::PrintI64), {g});
    f.ret(f.add(sum, g));
    return mb.finish();
}

Module
makeFloatProgram(int64_t n)
{
    ModuleBuilder mb("floaty");
    FuncBuilder &dot = mb.defineFunc("dot", Type::F64,
                                     {Type::Ptr, Type::Ptr, Type::I64});
    {
        uint32_t sSlot = dot.declareAlloca(8, 8, "s");
        ValueId s = dot.allocaAddr(sSlot);
        dot.store(Type::F64, s, dot.constFloat(0.0));
        dot.forLoop(dot.constInt(0), dot.param(2), [&](ValueId i) {
            ValueId x = dot.loadIdx(Type::F64, dot.param(0), i, 8);
            ValueId y = dot.loadIdx(Type::F64, dot.param(1), i, 8);
            dot.store(Type::F64, s,
                      dot.fadd(dot.load(Type::F64, s), dot.fmul(x, y)));
        });
        dot.ret(dot.load(Type::F64, s));
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId bytes = f.mulImm(f.constInt(n), 8);
    ValueId a = f.call(mb.builtin(Builtin::Malloc), {bytes});
    ValueId b = f.call(mb.builtin(Builtin::Malloc), {bytes});
    f.forLoopI(0, n, [&](ValueId i) {
        ValueId x = f.sitofp(i);
        f.storeIdx(Type::F64, a, i, f.fmul(x, f.constFloat(0.5)), 8);
        f.storeIdx(Type::F64, b, i,
                   f.fadd(x, f.constFloat(1.0)), 8);
    });
    ValueId d = f.call(mb.findFunc("dot"),
                       {a, b, f.constInt(n)});
    f.callVoid(mb.builtin(Builtin::PrintF64), {d});
    f.ret(f.fptosi(d));
    return mb.finish();
}

Module
makePointerProgram()
{
    ModuleBuilder mb("ptr");
    // bump(ptr p, i64 delta): *p += delta (pointer to caller's alloca).
    FuncBuilder &bump = mb.defineFunc("bump", Type::Void,
                                      {Type::Ptr, Type::I64});
    bump.store(Type::I64, bump.param(0),
               bump.add(bump.load(Type::I64, bump.param(0)),
                        bump.param(1)));
    bump.ret();

    // twice(ptr p): calls bump twice through another frame.
    FuncBuilder &twice = mb.defineFunc("twice", Type::Void, {Type::Ptr});
    twice.callVoid(mb.findFunc("bump"), {twice.param(0),
                                         twice.constInt(10)});
    twice.callVoid(mb.findFunc("bump"), {twice.param(0),
                                         twice.constInt(100)});
    twice.ret();

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t xSlot = f.declareAlloca(8, 8, "x");
    uint32_t arrSlot = f.declareAlloca(64, 16, "arr");
    ValueId x = f.allocaAddr(xSlot);
    ValueId arr = f.allocaAddr(arrSlot);
    f.store(Type::I64, x, f.constInt(1));
    f.forLoopI(0, 8, [&](ValueId i) {
        f.storeIdx(Type::I64, arr, i, f.mulImm(i, 3), 8);
    });
    f.callVoid(mb.findFunc("twice"), {x});
    // Also pass an interior pointer: &arr[4].
    ValueId inner = f.add(arr, f.constInt(32));
    f.callVoid(mb.findFunc("bump"), {inner, f.constInt(1000)});
    ValueId sum = f.load(Type::I64, x);
    f.forLoopI(0, 8, [&](ValueId i) {
        ValueId v = f.loadIdx(Type::I64, arr, i, 8);
        f.store(Type::I64, x, f.add(f.load(Type::I64, x), v));
    });
    ValueId result = f.load(Type::I64, x);
    f.callVoid(mb.builtin(Builtin::PrintI64), {sum});
    f.callVoid(mb.builtin(Builtin::PrintI64), {result});
    f.ret(result);
    return mb.finish();
}

Module
makeTlsHeapProgram()
{
    ModuleBuilder mb("tlsheap");
    uint32_t tlsCtr = mb.addGlobal("tls_ctr", 8, 8, false, true);
    uint32_t gArr = mb.addGlobalI64s("garr", {3, 1, 4, 1, 5, 9, 2, 6});

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId tls = f.tlsAddr(tlsCtr);
    f.store(Type::I64, tls, f.constInt(7));
    ValueId heap = f.call(mb.builtin(Builtin::Malloc), {f.constInt(64)});
    f.callVoid(mb.builtin(Builtin::Memcpy),
               {heap, f.globalAddr(gArr), f.constInt(64)});
    uint32_t sSlot = f.declareAlloca(8, 8, "s");
    ValueId s = f.allocaAddr(sSlot);
    f.store(Type::I64, s, f.load(Type::I64, tls));
    f.forLoopI(0, 8, [&](ValueId i) {
        ValueId v = f.loadIdx(Type::I64, heap, i, 8);
        f.store(Type::I64, s, f.add(f.load(Type::I64, s), v));
    });
    ValueId r = f.load(Type::I64, s);
    f.callVoid(mb.builtin(Builtin::PrintI64), {r});
    f.callVoid(mb.builtin(Builtin::Free), {heap});
    f.ret(r);
    return mb.finish();
}

Module
makeDeepRecursionProgram(int64_t depth)
{
    ModuleBuilder mb("deep");
    // down(n): local = n*2 in an alloca; r = n<=0 ? 0 : down(n-1);
    // return local + r + calleeHot where calleeHot is a value that
    // stays live across the recursive call (callee-saved candidate).
    FuncBuilder &down = mb.defineFunc("down", Type::I64, {Type::I64});
    {
        ValueId n = down.param(0);
        uint32_t slot = down.declareAlloca(16, 8, "local");
        ValueId local = down.allocaAddr(slot);
        down.store(Type::I64, local, down.mulImm(n, 2));
        ValueId hot = down.add(down.mulImm(n, 7), down.constInt(13));
        ValueId isBase = down.icmp(Cond::LE, n, down.constInt(0));
        uint32_t baseB = down.newBlock();
        uint32_t recB = down.newBlock();
        down.condBr(isBase, baseB, recB);
        down.setBlock(baseB);
        down.ret(down.constInt(0));
        down.setBlock(recB);
        ValueId r =
            down.call(mb.findFunc("down"),
                      {down.sub(n, down.constInt(1))});
        ValueId l = down.load(Type::I64, local);
        down.ret(down.add(down.add(l, r), hot));
    }
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId r = f.call(mb.findFunc("down"), {f.constInt(depth)});
    f.callVoid(mb.builtin(Builtin::PrintI64), {r});
    f.ret(r);
    return mb.finish();
}

Module
makeThreadedProgram(int64_t nthreads, int64_t elems)
{
    ModuleBuilder mb("threads");
    uint32_t gSum = mb.addGlobal("gsum", 8);
    uint32_t gN = mb.addGlobalI64s("gn", {elems});
    uint32_t gT = mb.addGlobalI64s("gt", {nthreads});

    // worker(slice): adds slice's partial sum of i over [lo,hi) into
    // gsum atomically, then barriers with main.
    FuncBuilder &w = mb.defineFunc("worker", Type::I64, {Type::I64});
    {
        ValueId slice = w.param(0);
        ValueId n = w.load(Type::I64, w.globalAddr(gN));
        ValueId t = w.load(Type::I64, w.globalAddr(gT));
        ValueId chunk = w.sdiv(n, t);
        ValueId lo = w.mul(slice, chunk);
        ValueId isLast = w.icmp(Cond::EQ, slice,
                                w.sub(t, w.constInt(1)));
        uint32_t hiSlot = w.declareAlloca(8, 8, "hi");
        ValueId hiAddr = w.allocaAddr(hiSlot);
        w.ifThenElse(
            isLast, [&] { w.store(Type::I64, hiAddr, n); },
            [&] {
                w.store(Type::I64, hiAddr, w.add(lo, chunk));
            });
        uint32_t accSlot = w.declareAlloca(8, 8, "acc");
        ValueId acc = w.allocaAddr(accSlot);
        w.store(Type::I64, acc, w.constInt(0));
        w.forLoop(lo, w.load(Type::I64, hiAddr), [&](ValueId i) {
            w.store(Type::I64, acc,
                    w.add(w.load(Type::I64, acc), i));
        });
        ValueId partial = w.load(Type::I64, acc);
        w.atomicAdd(w.globalAddr(gSum), partial);
        w.callVoid(mb.builtin(Builtin::BarrierWait),
                   {w.constInt(1), w.addImm(t, 1)});
        w.ret(partial);
    }

    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t tidSlot = f.declareAlloca(8 * 16, 8, "tids");
    ValueId tids = f.allocaAddr(tidSlot);
    ValueId fn = f.funcAddr(mb.findFunc("worker"));
    f.forLoopI(0, nthreads, [&](ValueId i) {
        ValueId tid =
            f.call(mb.builtin(Builtin::ThreadSpawn), {fn, i});
        f.storeIdx(Type::I64, tids, i, tid, 8);
    });
    f.callVoid(mb.builtin(Builtin::BarrierWait),
               {f.constInt(1), f.constInt(nthreads + 1)});
    f.forLoopI(0, nthreads, [&](ValueId i) {
        f.callVoid(mb.builtin(Builtin::ThreadJoin),
                   {f.loadIdx(Type::I64, tids, i, 8)});
    });
    ValueId total = f.load(Type::I64, f.globalAddr(gSum));
    f.callVoid(mb.builtin(Builtin::PrintI64), {total});
    f.ret(total);
    return mb.finish();
}

} // namespace xisa::testing
