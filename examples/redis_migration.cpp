/**
 * @file
 * Migrating a stateful service: the Redis-like workload.
 *
 * The paper motivates native-code migration with exactly this class of
 * application ("many applications are written in lower-level languages
 * like C for efficiency reasons (e.g., Redis)"). This example runs the
 * hash-table service on the x86 server, consolidates it onto the ARM
 * server mid-stream (as a datacenter operator would during a low-load
 * period), and shows that the service's state -- the full key-value
 * table in the heap/global segment -- needs no serialization at all:
 * the table pages follow the service on demand through hDSM.
 */

#include <cstdio>

#include "compiler/compile.hh"
#include "os/os.hh"
#include "workload/workloads.hh"

using namespace xisa;

int
main()
{
    Module mod = buildWorkload(WorkloadId::REDIS, ProblemClass::B, 1);
    MultiIsaBinary bin = compileModule(std::move(mod));

    auto run = [&](bool consolidate) {
        ReplicatedOS os(bin, OsConfig::dualServer());
        os.load(0);
        bool asked = false;
        os.onQuantum = [&](ReplicatedOS &self) {
            if (consolidate && !asked &&
                self.totalInstrs() > 800000) {
                self.migrateProcess(1);
                asked = true;
            }
        };
        OsRunResult res = os.run();
        std::printf("%-24s hits=%s acc=%s sets=%s  %.4f s, node %d, "
                    "%zu migrations, %llu pages pulled\n",
                    consolidate ? "with consolidation:"
                                : "baseline (stay on x86):",
                    res.output.at(0).c_str(), res.output.at(1).c_str(),
                    res.output.at(2).c_str(), res.makespanSeconds,
                    os.threadNode(0), os.migrations().size(),
                    (unsigned long long)
                        os.dsm().stats().pagesTransferred);
        return res.output;
    };

    std::printf("redis-like service, %s:\n\n",
                "16k-slot table, GET/SET stream");
    auto baseline = run(false);
    auto migrated = run(true);
    std::printf("\nservice state identical after migration: %s\n",
                baseline == migrated ? "YES" : "NO (bug!)");
    return 0;
}
