/**
 * @file
 * Datacenter consolidation scenario (the paper's motivating use case).
 *
 * A burst of jobs arrives; the operator can either keep two x86
 * servers (static assignment) or pair an x86 server with a
 * FinFET-generation ARM server and let heterogeneous-ISA migration
 * consolidate work dynamically. This example runs both configurations
 * on the same job set and prints the energy/performance trade-off.
 */

#include <cstdio>

#include "sched/jobsets.hh"

using namespace xisa;

int
main()
{
    std::printf("calibrating job profiles on both servers "
                "(compiles and runs every workload)...\n");
    JobProfileTable table = JobProfileTable::calibrate();

    for (WorkloadId wl : allWorkloads()) {
        std::printf("  %-6s x86 %.4fs  arm %.4fs  (arm/x86 %.2fx)\n",
                    workloadName(wl),
                    table.baseSeconds(wl, IsaId::Xeno64),
                    table.baseSeconds(wl, IsaId::Aether64),
                    table.baseSeconds(wl, IsaId::Aether64) /
                        table.baseSeconds(wl, IsaId::Xeno64));
    }

    auto jobs = makePeriodicSet(/*seed=*/7);
    std::printf("\njob set: %zu jobs in 5 waves\n", jobs.size());

    ClusterSim staticPool(makeX86X86Pool(), table);
    ClusterSim hetPool(makeHeterogeneousPool(/*finfetArm=*/true), table);

    ClusterResult s = staticPool.run(jobs, Policy::StaticBalanced);
    ClusterResult d = hetPool.run(jobs, Policy::DynamicBalanced);

    std::printf("\n%-28s %12s %12s %10s %8s\n", "configuration",
                "energy(kJ)", "makespan(s)", "EDP(MJ*s)", "migr");
    std::printf("%-28s %12.1f %12.1f %10.2f %8d\n",
                "static x86 + x86", s.totalEnergy / 1e3, s.makespan,
                s.edp / 1e9, s.migrations);
    std::printf("%-28s %12.1f %12.1f %10.2f %8d\n",
                "dynamic x86 + ARM (FinFET)", d.totalEnergy / 1e3,
                d.makespan, d.edp / 1e9, d.migrations);
    std::printf("\nenergy saved by heterogeneous migration: %.1f%%\n",
                (1.0 - d.totalEnergy / s.totalEnergy) * 100.0);
    std::printf("EDP change: %+.1f%%\n",
                (d.edp / s.edp - 1.0) * 100.0);
    return 0;
}
