/**
 * @file
 * Migration lab: a guided dissection of one cross-ISA migration.
 *
 * Compiles a recursive program, shows how the SAME function is lowered
 * differently for each ISA (different instruction counts, encoded
 * sizes, frame sizes, and alloca placement -- the reason stack
 * transformation exists), then migrates it mid-recursion and dumps
 * exactly what the transformation runtime did.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "compiler/compile.hh"
#include "ir/builder.hh"
#include "obs/trace.hh"
#include "os/os.hh"

using namespace xisa;

namespace {

/** depth-`n` recursion with an alloca and live values in every frame. */
Module
buildProgram()
{
    ModuleBuilder mb("lab");
    FuncBuilder &down = mb.defineFunc("down", Type::I64, {Type::I64});
    {
        ValueId n = down.param(0);
        uint32_t slot = down.declareAlloca(24, 8, "frame_local");
        ValueId local = down.allocaAddr(slot);
        down.store(Type::I64, local, down.mulImm(n, 3));
        ValueId keep = down.addImm(down.mul(n, n), 11); // callee-saved
        ValueId stop = down.icmp(Cond::LE, n, down.constInt(0));
        uint32_t baseB = down.newBlock();
        uint32_t recB = down.newBlock();
        down.condBr(stop, baseB, recB);
        down.setBlock(baseB);
        down.ret(down.constInt(0));
        down.setBlock(recB);
        // Burn some cycles per frame so the migration lands mid-tree.
        down.forLoopI(0, 500, [&](ValueId i) {
            down.store(Type::I64, local,
                       down.add(down.load(Type::I64, local), i));
        });
        ValueId sub = down.call(mb.findFunc("down"),
                                {down.sub(n, down.constInt(1))});
        ValueId l = down.load(Type::I64, local);
        down.ret(down.add(down.add(l, sub), keep));
    }
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    ValueId r = f.call(mb.findFunc("down"), {f.constInt(25)});
    f.callVoid(mb.builtin(Builtin::PrintI64), {r});
    f.ret(f.constInt(0));
    return mb.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    // --trace-out FILE: arm the event tracer, write Chrome trace JSON.
    // --stats-json FILE: write the container's stat registry as JSON.
    const char *traceOut = nullptr;
    const char *statsJson = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
            traceOut = argv[++i];
        } else if (!std::strcmp(argv[i], "--stats-json") &&
                   i + 1 < argc) {
            statsJson = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace-out FILE] "
                         "[--stats-json FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (traceOut)
        obs::setTraceEnabled(true);

    MultiIsaBinary bin = compileModule(buildProgram());
    uint32_t downId = bin.ir.findFunc("down");

    std::printf("== the same function, two lowerings ==\n");
    for (int i = 0; i < kNumIsas; ++i) {
        IsaId isa = static_cast<IsaId>(i);
        const FuncImage &img = bin.image[i][downId];
        std::printf("\n'down' on %s: %zu instructions, %u bytes, frame "
                    "%u bytes, alloca at FP%+d,\n  %zu callee-saved GPR "
                    "save slots\n",
                    isaName(isa), img.code.size(), img.codeBytes(),
                    img.frame.frameSize, img.frame.allocaFpOff[0],
                    img.frame.savedGpr.size());
        std::printf("  first instructions:\n");
        for (size_t k = 0; k < 6 && k < img.code.size(); ++k)
            std::printf("    %04x: %s\n", img.instrOff[k],
                        disasm(img.code[k], isa).c_str());
    }

    std::printf("\n== run on ARM, migrate to x86 mid-recursion ==\n");
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 1000;
    ReplicatedOS os(bin, cfg);
    os.load(/*startNode=*/1);
    bool asked = false;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (!asked && self.totalInstrs() > 60000) {
            self.migrateProcess(0);
            asked = true;
        }
    };
    OsRunResult res = os.run();
    std::printf("result: %s (exit %lld)\n", res.output.at(0).c_str(),
                (long long)res.exitCode);
    for (const MigrationEvent &ev : os.migrations()) {
        std::printf("\nmigration %s -> %s at call-site %u:\n",
                    isaName(static_cast<IsaId>(
                        ev.fromNode == 0 ? IsaId::Xeno64
                                         : IsaId::Aether64)),
                    ev.toNode == 0 ? "xeno64" : "aether64", ev.siteId);
        std::printf("  frames walked/rebuilt: %u\n",
                    ev.transform.frames);
        std::printf("  live values relocated: %u\n",
                    ev.transform.liveValues);
        std::printf("  stack pointers fixed up: %u\n",
                    ev.transform.pointersFixed);
        std::printf("  bytes rewritten: %llu\n",
                    (unsigned long long)ev.transform.bytesCopied);
        std::printf("  transformation wall clock (host): %.1f us\n",
                    ev.transform.hostSeconds * 1e6);
        std::printf("  response time (request -> resume): %.1f us "
                    "simulated\n",
                    (ev.resumeTime - ev.requestTime) * 1e6);
    }
    std::printf("\nhDSM moved %llu pages on demand after the "
                "migration.\n",
                (unsigned long long)os.dsm().stats().pagesTransferred);

    if (statsJson) {
        std::ofstream f(statsJson);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", statsJson);
            return 1;
        }
        os.statRegistry().dumpJson(f);
        std::printf("stats json: %s\n", statsJson);
    }
    if (traceOut) {
        std::ofstream f(traceOut);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", traceOut);
            return 1;
        }
        obs::Tracer::global().exportChromeTrace(f);
        std::printf("trace: %s (%zu events)\n", traceOut,
                    obs::Tracer::global().size());
    }
    return 0;
}
