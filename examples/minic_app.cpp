/**
 * @file
 * A "native datacenter application written in C" -- the paper's target
 * developer experience, end to end:
 *
 *   C-like source --(MiniC front end)--> BIR --(optimizer, migration
 *   points, per-ISA backends, symbol alignment)--> multi-ISA binary
 *   --(heterogeneous container)--> runs on x86, consolidates to ARM
 *   mid-run, finishes with identical results.
 *
 * The program is a little log-analytics service: it synthesizes
 * events, histograms latencies, and reports percentile-ish stats. No
 * line of it mentions ISAs or migration (beyond optional
 * migrate_point() hints in its long loops).
 */

#include <cstdio>

#include "compiler/compile.hh"
#include "frontend/minic.hh"
#include "os/os.hh"

using namespace xisa;

static const char *kSource = R"(
// --- log analytics in MiniC ------------------------------------------
long hist[512];
long rngState;

long rng() {
    rngState = rngState * 6364136223846793005 + 1442695040888963407;
    return (rngState >> 17) & 0x7fffffff;
}

long synthLatencyUs() {
    // Bursty latencies: mostly fast, a heavy tail.
    long r = rng();
    if (r % 100 < 90) return 50 + r % 400;
    return 1000 + r % 30000;
}

void ingest(long events) {
    for (long i = 0; i < events; i += 1) {
        migrate_point();  // long-running loop: stay migratable
        long us = synthLatencyUs();
        long bucket = us / 64;
        if (bucket > 511) bucket = 511;
        hist[bucket] += 1;
    }
}

long percentile(long total, long pct) {
    long want = total * pct / 100;
    long seen = 0;
    for (long b = 0; b < 512; b += 1) {
        seen += hist[b];
        if (seen >= want) return b * 64;
    }
    return 511 * 64;
}

long main() {
    rngState = 20260705;
    long events = 120000;
    ingest(events);
    long total = 0;
    for (long b = 0; b < 512; b += 1) total += hist[b];
    print_i64(total);
    print_i64(percentile(total, 50));
    print_i64(percentile(total, 99));
    return percentile(total, 99) / 64;
}
)";

int
main()
{
    std::printf("compiling the MiniC service for both ISAs...\n");
    MultiIsaBinary bin = compileModule(compileMiniC(kSource, "logsvc"));
    std::printf("  %zu call sites, %llu B aether64 text, %llu B xeno64 "
                "text, 'main' at 0x%llx on both\n",
                bin.callSite[0].size(),
                (unsigned long long)bin.textBytes(IsaId::Aether64),
                (unsigned long long)bin.textBytes(IsaId::Xeno64),
                (unsigned long long)
                    bin.funcAddr[0][bin.ir.findFunc("main")]);

    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(/*x86*/ 0);
    bool asked = false;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (!asked && self.totalInstrs() > 2000000) {
            std::printf("operator: consolidating the service onto the "
                        "ARM box (t=%.4f s)\n",
                        self.now());
            self.migrateProcess(1);
            asked = true;
        }
    };
    OsRunResult res = os.run();
    std::printf("\nservice report: %s events, p50=%s us, p99=%s us\n",
                res.output.at(0).c_str(), res.output.at(1).c_str(),
                res.output.at(2).c_str());
    for (const MigrationEvent &ev : os.migrations())
        std::printf("migrated x86->ARM mid-ingest: %u frames, %u live "
                    "values, %.1f us of stack transformation\n",
                    ev.transform.frames, ev.transform.liveValues,
                    ev.transform.hostSeconds * 1e6);
    std::printf("finished on node %d with exit code %lld\n",
                os.threadNode(0), (long long)res.exitCode);
    return 0;
}
