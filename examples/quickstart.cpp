/**
 * @file
 * Quickstart: build a program, compile it into a multi-ISA binary, run
 * it in a heterogeneous OS-container, and migrate it between the ARM
 * and x86 servers mid-execution.
 *
 *   $ ./examples/quickstart
 *
 * Walks through the whole public API surface:
 *  1. ModuleBuilder / FuncBuilder  -- author a program in BIR;
 *  2. compileModule()              -- produce the multi-ISA binary
 *                                     (one text per ISA, one layout);
 *  3. ReplicatedOS                 -- load the container on the x86
 *                                     node and run;
 *  4. migrateProcess()             -- ask the scheduler to move it to
 *                                     the ARM node; the runtime
 *                                     transforms the stack at the next
 *                                     migration point.
 */

#include <cstdio>

#include "compiler/compile.hh"
#include "ir/builder.hh"
#include "os/os.hh"

using namespace xisa;

int
main()
{
    // --- 1. Author a program. -----------------------------------------
    // long sum = 0; for (i = 0; i < 200000; i++) sum += i*i % 7;
    // print(sum); return sum & 0xffff;
    ModuleBuilder mb("quickstart");
    FuncBuilder &f = mb.defineFunc("main", Type::I64, {});
    uint32_t slot = f.declareAlloca(8, 8, "sum");
    ValueId sum = f.allocaAddr(slot);
    f.store(Type::I64, sum, f.constInt(0));
    f.forLoopI(0, 200000, [&](ValueId i) {
        ValueId sq = f.srem(f.mul(i, i), f.constInt(7));
        f.store(Type::I64, sum, f.add(f.load(Type::I64, sum), sq));
    });
    ValueId result = f.load(Type::I64, sum);
    f.callVoid(mb.builtin(Builtin::PrintI64), {result});
    f.ret(f.band(result, f.constInt(0xffff)));
    Module mod = mb.finish();

    // --- 2. Compile to a multi-ISA binary. -----------------------------
    MultiIsaBinary bin = compileModule(std::move(mod));
    std::printf("multi-ISA binary '%s':\n", bin.name.c_str());
    std::printf("  aether64 text: %llu bytes, xeno64 text: %llu bytes\n",
                (unsigned long long)bin.textBytes(IsaId::Aether64),
                (unsigned long long)bin.textBytes(IsaId::Xeno64));
    uint32_t mainId = bin.ir.findFunc("main");
    std::printf("  'main' is at 0x%llx on BOTH ISAs (symbol "
                "alignment)\n",
                (unsigned long long)bin.funcAddr[0][mainId]);
    std::printf("  %zu call sites carry cross-ISA stackmaps\n",
                bin.callSite[0].size());

    // --- 3. Run it on the x86 server of the dual-server testbed. -------
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(/*startNode=*/0);

    // --- 4. Ask for a migration once it is underway. -------------------
    bool asked = false;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (!asked && self.totalInstrs() > 500000) {
            std::printf("scheduler: requesting migration x86 -> ARM at "
                        "t=%.6f s\n", self.now());
            self.migrateProcess(1);
            asked = true;
        }
    };
    OsRunResult res = os.run();

    std::printf("program output: %s\n", res.output.at(0).c_str());
    std::printf("exit code: %lld, %llu instructions, %.6f s simulated\n",
                (long long)res.exitCode,
                (unsigned long long)res.totalInstrs,
                res.makespanSeconds);
    for (const MigrationEvent &ev : os.migrations()) {
        std::printf("migrated node %d -> node %d: %u frames, %u live "
                    "values, %llu bytes rewritten, resumed %.2f us "
                    "after the request\n",
                    ev.fromNode, ev.toNode, ev.transform.frames,
                    ev.transform.liveValues,
                    (unsigned long long)ev.transform.bytesCopied,
                    (ev.resumeTime - ev.requestTime) * 1e6);
    }
    std::printf("final node of main thread: %d (ARM)\n",
                os.threadNode(0));
    return 0;
}
