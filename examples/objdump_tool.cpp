/**
 * @file
 * xisa-objdump: compile a workload (or load a saved .xbin), then dump
 * headers, side-by-side disassembly, and call-site stackmaps.
 *
 *   ./examples/objdump_tool                # dumps the redis workload
 *   ./examples/objdump_tool is             # any workload name
 *   ./examples/objdump_tool /path/x.xbin   # a saved binary
 *
 * Also demonstrates the save/load API: the binary is round-tripped
 * through the on-disk format before dumping.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "binary/dump.hh"
#include "binary/serialize.hh"
#include "compiler/compile.hh"
#include "workload/workloads.hh"

using namespace xisa;

int
main(int argc, char **argv)
{
    std::string arg = argc > 1 ? argv[1] : "redis";
    MultiIsaBinary bin;
    if (arg.find(".xbin") != std::string::npos) {
        bin = loadBinaryFile(arg);
    } else {
        WorkloadId which = WorkloadId::REDIS;
        bool found = false;
        for (WorkloadId wl : allWorkloads()) {
            if (arg == workloadName(wl)) {
                which = wl;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "unknown workload '%s'; try: ", arg.c_str());
            for (WorkloadId wl : allWorkloads())
                std::fprintf(stderr, "%s ", workloadName(wl));
            std::fprintf(stderr, "\n");
            return 1;
        }
        bin = compileModule(buildWorkload(which, ProblemClass::A, 1));
        // Round-trip through the on-disk format, as a real consumer
        // would receive it.
        bin = loadBinary(saveBinary(bin));
    }

    std::fputs(dumpHeaders(bin).c_str(), stdout);
    uint32_t mainId = bin.ir.findFunc("main");
    std::printf("\n-- main, both lowerings --\n");
    std::fputs(dumpFunction(bin, mainId, IsaId::Aether64).c_str(),
               stdout);
    std::printf("\n");
    std::fputs(dumpFunction(bin, mainId, IsaId::Xeno64).c_str(), stdout);

    // Show the first migration-point stackmap with live values.
    for (const auto &[id, site] : bin.callSite[0]) {
        if (site.isMigrationPoint && !site.live.empty()) {
            std::printf("\n-- a migration-point stackmap --\n");
            std::fputs(dumpCallSite(bin, id).c_str(), stdout);
            break;
        }
    }
    return 0;
}
