# Empty dependencies file for xisa_isa.
# This may be replaced when dependencies are built.
