file(REMOVE_RECURSE
  "libxisa_isa.a"
)
