file(REMOVE_RECURSE
  "CMakeFiles/xisa_isa.dir/abi.cc.o"
  "CMakeFiles/xisa_isa.dir/abi.cc.o.d"
  "CMakeFiles/xisa_isa.dir/isa.cc.o"
  "CMakeFiles/xisa_isa.dir/isa.cc.o.d"
  "libxisa_isa.a"
  "libxisa_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
