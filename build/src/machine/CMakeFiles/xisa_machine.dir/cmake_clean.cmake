file(REMOVE_RECURSE
  "CMakeFiles/xisa_machine.dir/cache.cc.o"
  "CMakeFiles/xisa_machine.dir/cache.cc.o.d"
  "CMakeFiles/xisa_machine.dir/interp.cc.o"
  "CMakeFiles/xisa_machine.dir/interp.cc.o.d"
  "CMakeFiles/xisa_machine.dir/mem.cc.o"
  "CMakeFiles/xisa_machine.dir/mem.cc.o.d"
  "CMakeFiles/xisa_machine.dir/node.cc.o"
  "CMakeFiles/xisa_machine.dir/node.cc.o.d"
  "libxisa_machine.a"
  "libxisa_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
