file(REMOVE_RECURSE
  "libxisa_machine.a"
)
