# Empty compiler generated dependencies file for xisa_machine.
# This may be replaced when dependencies are built.
