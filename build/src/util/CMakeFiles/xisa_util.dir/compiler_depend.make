# Empty compiler generated dependencies file for xisa_util.
# This may be replaced when dependencies are built.
