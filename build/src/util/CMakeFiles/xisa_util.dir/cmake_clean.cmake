file(REMOVE_RECURSE
  "CMakeFiles/xisa_util.dir/logging.cc.o"
  "CMakeFiles/xisa_util.dir/logging.cc.o.d"
  "CMakeFiles/xisa_util.dir/stats.cc.o"
  "CMakeFiles/xisa_util.dir/stats.cc.o.d"
  "libxisa_util.a"
  "libxisa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
