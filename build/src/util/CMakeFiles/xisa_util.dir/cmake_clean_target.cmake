file(REMOVE_RECURSE
  "libxisa_util.a"
)
