file(REMOVE_RECURSE
  "CMakeFiles/xisa_sched.dir/cluster.cc.o"
  "CMakeFiles/xisa_sched.dir/cluster.cc.o.d"
  "CMakeFiles/xisa_sched.dir/jobsets.cc.o"
  "CMakeFiles/xisa_sched.dir/jobsets.cc.o.d"
  "CMakeFiles/xisa_sched.dir/profile.cc.o"
  "CMakeFiles/xisa_sched.dir/profile.cc.o.d"
  "libxisa_sched.a"
  "libxisa_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
