# Empty dependencies file for xisa_sched.
# This may be replaced when dependencies are built.
