file(REMOVE_RECURSE
  "libxisa_sched.a"
)
