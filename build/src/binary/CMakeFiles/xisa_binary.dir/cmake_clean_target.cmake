file(REMOVE_RECURSE
  "libxisa_binary.a"
)
