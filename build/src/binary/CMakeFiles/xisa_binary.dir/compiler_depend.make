# Empty compiler generated dependencies file for xisa_binary.
# This may be replaced when dependencies are built.
