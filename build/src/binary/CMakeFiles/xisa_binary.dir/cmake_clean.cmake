file(REMOVE_RECURSE
  "CMakeFiles/xisa_binary.dir/dump.cc.o"
  "CMakeFiles/xisa_binary.dir/dump.cc.o.d"
  "CMakeFiles/xisa_binary.dir/multibinary.cc.o"
  "CMakeFiles/xisa_binary.dir/multibinary.cc.o.d"
  "CMakeFiles/xisa_binary.dir/serialize.cc.o"
  "CMakeFiles/xisa_binary.dir/serialize.cc.o.d"
  "libxisa_binary.a"
  "libxisa_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
