file(REMOVE_RECURSE
  "CMakeFiles/xisa_dsm.dir/dsm.cc.o"
  "CMakeFiles/xisa_dsm.dir/dsm.cc.o.d"
  "libxisa_dsm.a"
  "libxisa_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
