# Empty compiler generated dependencies file for xisa_dsm.
# This may be replaced when dependencies are built.
