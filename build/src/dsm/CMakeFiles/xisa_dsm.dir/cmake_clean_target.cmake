file(REMOVE_RECURSE
  "libxisa_dsm.a"
)
