# Empty dependencies file for xisa_emu.
# This may be replaced when dependencies are built.
