file(REMOVE_RECURSE
  "libxisa_emu.a"
)
