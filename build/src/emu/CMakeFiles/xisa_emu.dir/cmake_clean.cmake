file(REMOVE_RECURSE
  "CMakeFiles/xisa_emu.dir/dbt.cc.o"
  "CMakeFiles/xisa_emu.dir/dbt.cc.o.d"
  "libxisa_emu.a"
  "libxisa_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
