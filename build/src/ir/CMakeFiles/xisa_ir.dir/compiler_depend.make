# Empty compiler generated dependencies file for xisa_ir.
# This may be replaced when dependencies are built.
