file(REMOVE_RECURSE
  "CMakeFiles/xisa_ir.dir/builder.cc.o"
  "CMakeFiles/xisa_ir.dir/builder.cc.o.d"
  "CMakeFiles/xisa_ir.dir/interp.cc.o"
  "CMakeFiles/xisa_ir.dir/interp.cc.o.d"
  "CMakeFiles/xisa_ir.dir/ir.cc.o"
  "CMakeFiles/xisa_ir.dir/ir.cc.o.d"
  "CMakeFiles/xisa_ir.dir/print.cc.o"
  "CMakeFiles/xisa_ir.dir/print.cc.o.d"
  "libxisa_ir.a"
  "libxisa_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
