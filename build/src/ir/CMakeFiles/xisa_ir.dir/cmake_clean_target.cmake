file(REMOVE_RECURSE
  "libxisa_ir.a"
)
