file(REMOVE_RECURSE
  "libxisa_serial.a"
)
