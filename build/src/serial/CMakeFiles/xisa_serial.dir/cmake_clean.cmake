file(REMOVE_RECURSE
  "CMakeFiles/xisa_serial.dir/padmig.cc.o"
  "CMakeFiles/xisa_serial.dir/padmig.cc.o.d"
  "libxisa_serial.a"
  "libxisa_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
