# Empty compiler generated dependencies file for xisa_serial.
# This may be replaced when dependencies are built.
