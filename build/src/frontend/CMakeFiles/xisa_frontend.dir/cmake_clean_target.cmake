file(REMOVE_RECURSE
  "libxisa_frontend.a"
)
