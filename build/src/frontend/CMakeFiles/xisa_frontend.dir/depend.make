# Empty dependencies file for xisa_frontend.
# This may be replaced when dependencies are built.
