file(REMOVE_RECURSE
  "CMakeFiles/xisa_frontend.dir/minic.cc.o"
  "CMakeFiles/xisa_frontend.dir/minic.cc.o.d"
  "libxisa_frontend.a"
  "libxisa_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
