file(REMOVE_RECURSE
  "CMakeFiles/xisa_migprofile.dir/migprofile.cc.o"
  "CMakeFiles/xisa_migprofile.dir/migprofile.cc.o.d"
  "libxisa_migprofile.a"
  "libxisa_migprofile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_migprofile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
