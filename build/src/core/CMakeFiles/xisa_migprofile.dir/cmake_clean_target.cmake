file(REMOVE_RECURSE
  "libxisa_migprofile.a"
)
