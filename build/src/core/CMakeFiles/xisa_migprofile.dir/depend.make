# Empty dependencies file for xisa_migprofile.
# This may be replaced when dependencies are built.
