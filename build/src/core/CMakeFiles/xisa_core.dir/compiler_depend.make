# Empty compiler generated dependencies file for xisa_core.
# This may be replaced when dependencies are built.
