file(REMOVE_RECURSE
  "CMakeFiles/xisa_core.dir/stacktransform.cc.o"
  "CMakeFiles/xisa_core.dir/stacktransform.cc.o.d"
  "libxisa_core.a"
  "libxisa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
