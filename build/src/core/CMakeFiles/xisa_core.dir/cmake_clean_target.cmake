file(REMOVE_RECURSE
  "libxisa_core.a"
)
