# Empty dependencies file for xisa_os.
# This may be replaced when dependencies are built.
