file(REMOVE_RECURSE
  "libxisa_os.a"
)
