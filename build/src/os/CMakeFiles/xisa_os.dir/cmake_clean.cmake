file(REMOVE_RECURSE
  "CMakeFiles/xisa_os.dir/checkpoint.cc.o"
  "CMakeFiles/xisa_os.dir/checkpoint.cc.o.d"
  "CMakeFiles/xisa_os.dir/energy.cc.o"
  "CMakeFiles/xisa_os.dir/energy.cc.o.d"
  "CMakeFiles/xisa_os.dir/os.cc.o"
  "CMakeFiles/xisa_os.dir/os.cc.o.d"
  "libxisa_os.a"
  "libxisa_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
