file(REMOVE_RECURSE
  "CMakeFiles/xisa_compiler.dir/backend.cc.o"
  "CMakeFiles/xisa_compiler.dir/backend.cc.o.d"
  "CMakeFiles/xisa_compiler.dir/compile.cc.o"
  "CMakeFiles/xisa_compiler.dir/compile.cc.o.d"
  "CMakeFiles/xisa_compiler.dir/liveness.cc.o"
  "CMakeFiles/xisa_compiler.dir/liveness.cc.o.d"
  "CMakeFiles/xisa_compiler.dir/migpass.cc.o"
  "CMakeFiles/xisa_compiler.dir/migpass.cc.o.d"
  "CMakeFiles/xisa_compiler.dir/opt.cc.o"
  "CMakeFiles/xisa_compiler.dir/opt.cc.o.d"
  "libxisa_compiler.a"
  "libxisa_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
