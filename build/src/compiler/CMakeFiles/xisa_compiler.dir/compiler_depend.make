# Empty compiler generated dependencies file for xisa_compiler.
# This may be replaced when dependencies are built.
