file(REMOVE_RECURSE
  "libxisa_compiler.a"
)
