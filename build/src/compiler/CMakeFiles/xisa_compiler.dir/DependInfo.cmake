
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/backend.cc" "src/compiler/CMakeFiles/xisa_compiler.dir/backend.cc.o" "gcc" "src/compiler/CMakeFiles/xisa_compiler.dir/backend.cc.o.d"
  "/root/repo/src/compiler/compile.cc" "src/compiler/CMakeFiles/xisa_compiler.dir/compile.cc.o" "gcc" "src/compiler/CMakeFiles/xisa_compiler.dir/compile.cc.o.d"
  "/root/repo/src/compiler/liveness.cc" "src/compiler/CMakeFiles/xisa_compiler.dir/liveness.cc.o" "gcc" "src/compiler/CMakeFiles/xisa_compiler.dir/liveness.cc.o.d"
  "/root/repo/src/compiler/migpass.cc" "src/compiler/CMakeFiles/xisa_compiler.dir/migpass.cc.o" "gcc" "src/compiler/CMakeFiles/xisa_compiler.dir/migpass.cc.o.d"
  "/root/repo/src/compiler/opt.cc" "src/compiler/CMakeFiles/xisa_compiler.dir/opt.cc.o" "gcc" "src/compiler/CMakeFiles/xisa_compiler.dir/opt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binary/CMakeFiles/xisa_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/xisa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xisa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xisa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
