file(REMOVE_RECURSE
  "libxisa_workload.a"
)
