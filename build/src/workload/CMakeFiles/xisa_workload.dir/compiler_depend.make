# Empty compiler generated dependencies file for xisa_workload.
# This may be replaced when dependencies are built.
