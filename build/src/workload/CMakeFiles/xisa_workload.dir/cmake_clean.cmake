file(REMOVE_RECURSE
  "CMakeFiles/xisa_workload.dir/workloads.cc.o"
  "CMakeFiles/xisa_workload.dir/workloads.cc.o.d"
  "libxisa_workload.a"
  "libxisa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
