file(REMOVE_RECURSE
  "CMakeFiles/minic_app.dir/minic_app.cpp.o"
  "CMakeFiles/minic_app.dir/minic_app.cpp.o.d"
  "minic_app"
  "minic_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
