# Empty compiler generated dependencies file for minic_app.
# This may be replaced when dependencies are built.
