file(REMOVE_RECURSE
  "CMakeFiles/objdump_tool.dir/objdump_tool.cpp.o"
  "CMakeFiles/objdump_tool.dir/objdump_tool.cpp.o.d"
  "objdump_tool"
  "objdump_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objdump_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
