# Empty dependencies file for objdump_tool.
# This may be replaced when dependencies are built.
