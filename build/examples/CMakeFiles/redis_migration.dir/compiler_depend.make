# Empty compiler generated dependencies file for redis_migration.
# This may be replaced when dependencies are built.
