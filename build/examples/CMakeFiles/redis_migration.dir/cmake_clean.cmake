file(REMOVE_RECURSE
  "CMakeFiles/redis_migration.dir/redis_migration.cpp.o"
  "CMakeFiles/redis_migration.dir/redis_migration.cpp.o.d"
  "redis_migration"
  "redis_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
