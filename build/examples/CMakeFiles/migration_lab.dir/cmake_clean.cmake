file(REMOVE_RECURSE
  "CMakeFiles/migration_lab.dir/migration_lab.cpp.o"
  "CMakeFiles/migration_lab.dir/migration_lab.cpp.o.d"
  "migration_lab"
  "migration_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
