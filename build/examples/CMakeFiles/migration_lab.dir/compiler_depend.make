# Empty compiler generated dependencies file for migration_lab.
# This may be replaced when dependencies are built.
