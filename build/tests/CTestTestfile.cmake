# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_migration[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_dsm[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_emu[1]_include.cmake")
include("/root/repo/build/tests/test_serial[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_binary[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_minic[1]_include.cmake")
