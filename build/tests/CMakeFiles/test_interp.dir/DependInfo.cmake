
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_interp.cc" "tests/CMakeFiles/test_interp.dir/test_interp.cc.o" "gcc" "tests/CMakeFiles/test_interp.dir/test_interp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xisa_migprofile.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/xisa_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/xisa_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/xisa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/xisa_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/xisa_os.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xisa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/xisa_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/xisa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/xisa_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xisa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/xisa_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/xisa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xisa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xisa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
