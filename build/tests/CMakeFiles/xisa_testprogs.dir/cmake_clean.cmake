file(REMOVE_RECURSE
  "CMakeFiles/xisa_testprogs.dir/testprogs.cc.o"
  "CMakeFiles/xisa_testprogs.dir/testprogs.cc.o.d"
  "libxisa_testprogs.a"
  "libxisa_testprogs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xisa_testprogs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
