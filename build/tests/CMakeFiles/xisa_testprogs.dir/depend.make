# Empty dependencies file for xisa_testprogs.
# This may be replaced when dependencies are built.
