file(REMOVE_RECURSE
  "libxisa_testprogs.a"
)
