file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_alignment.dir/bench_table1_alignment.cc.o"
  "CMakeFiles/bench_table1_alignment.dir/bench_table1_alignment.cc.o.d"
  "bench_table1_alignment"
  "bench_table1_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
