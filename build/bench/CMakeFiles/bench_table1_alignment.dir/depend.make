# Empty dependencies file for bench_table1_alignment.
# This may be replaced when dependencies are built.
