# Empty dependencies file for bench_ablation_dsm.
# This may be replaced when dependencies are built.
