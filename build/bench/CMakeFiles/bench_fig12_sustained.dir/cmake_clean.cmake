file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sustained.dir/bench_fig12_sustained.cc.o"
  "CMakeFiles/bench_fig12_sustained.dir/bench_fig12_sustained.cc.o.d"
  "bench_fig12_sustained"
  "bench_fig12_sustained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sustained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
