# Empty dependencies file for bench_fig12_sustained.
# This may be replaced when dependencies are built.
