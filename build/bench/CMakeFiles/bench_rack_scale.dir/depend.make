# Empty dependencies file for bench_rack_scale.
# This may be replaced when dependencies are built.
