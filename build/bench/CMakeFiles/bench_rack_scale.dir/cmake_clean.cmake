file(REMOVE_RECURSE
  "CMakeFiles/bench_rack_scale.dir/bench_rack_scale.cc.o"
  "CMakeFiles/bench_rack_scale.dir/bench_rack_scale.cc.o.d"
  "bench_rack_scale"
  "bench_rack_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rack_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
