file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_migration_points.dir/bench_fig03_migration_points.cc.o"
  "CMakeFiles/bench_fig03_migration_points.dir/bench_fig03_migration_points.cc.o.d"
  "bench_fig03_migration_points"
  "bench_fig03_migration_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_migration_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
