# Empty dependencies file for bench_fig13_periodic.
# This may be replaced when dependencies are built.
