file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_periodic.dir/bench_fig13_periodic.cc.o"
  "CMakeFiles/bench_fig13_periodic.dir/bench_fig13_periodic.cc.o.d"
  "bench_fig13_periodic"
  "bench_fig13_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
