# Empty dependencies file for bench_fig10_stack_transform.
# This may be replaced when dependencies are built.
