file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_stack_transform.dir/bench_fig10_stack_transform.cc.o"
  "CMakeFiles/bench_fig10_stack_transform.dir/bench_fig10_stack_transform.cc.o.d"
  "bench_fig10_stack_transform"
  "bench_fig10_stack_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stack_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
