file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_migpoints.dir/bench_ablation_migpoints.cc.o"
  "CMakeFiles/bench_ablation_migpoints.dir/bench_ablation_migpoints.cc.o.d"
  "bench_ablation_migpoints"
  "bench_ablation_migpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_migpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
