# Empty dependencies file for bench_ablation_migpoints.
# This may be replaced when dependencies are built.
