file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_emulation.dir/bench_fig01_emulation.cc.o"
  "CMakeFiles/bench_fig01_emulation.dir/bench_fig01_emulation.cc.o.d"
  "bench_fig01_emulation"
  "bench_fig01_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
